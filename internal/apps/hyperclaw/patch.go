package hyperclaw

import (
	"repro/internal/amr"
)

// ghostWidth is the halo width of every patch (first-order Godunov).
const ghostWidth = 1

// Patch is the field data on one AMR box, with ghost cells. Data is laid
// out field-major, x-fastest within each field.
type Patch struct {
	Box  amr.Box
	G    int
	ex   [3]int // ghost-inclusive extents
	data []float64
	// Pencil work buffers for SweepDim, allocated lazily and reused.
	states []float64
	prims  []prim
	fluxes []float64
}

// NewPatch allocates a zeroed patch over the given box.
func NewPatch(b amr.Box) *Patch {
	p := &Patch{Box: b, G: ghostWidth}
	for d := 0; d < 3; d++ {
		p.ex[d] = b.Extent(d) + 2*p.G
	}
	p.data = make([]float64, NFields*p.ex[0]*p.ex[1]*p.ex[2])
	return p
}

// offset maps global cell coordinates (which may lie in the ghost region)
// and a field index to a data offset.
func (p *Patch) offset(f, i, j, k int) int {
	li := i - p.Box.Lo[0] + p.G
	lj := j - p.Box.Lo[1] + p.G
	lk := k - p.Box.Lo[2] + p.G
	return ((f*p.ex[2]+lk)*p.ex[1]+lj)*p.ex[0] + li
}

// At reads field f at global cell (i, j, k).
func (p *Patch) At(f, i, j, k int) float64 { return p.data[p.offset(f, i, j, k)] }

// Set writes field f at global cell (i, j, k).
func (p *Patch) Set(f, i, j, k int, v float64) { p.data[p.offset(f, i, j, k)] = v }

// State returns the NFields conserved values at a cell as a slice
// (allocating; used by the solver through state buffers instead).
func (p *Patch) State(i, j, k int, out []float64) {
	for f := 0; f < NFields; f++ {
		out[f] = p.At(f, i, j, k)
	}
}

// Fill initialises every interior cell from a function of global cell
// coordinates.
func (p *Patch) Fill(fn func(i, j, k int) [NFields]float64) {
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				q := fn(i, j, k)
				for f := 0; f < NFields; f++ {
					p.Set(f, i, j, k, q[f])
				}
			}
		}
	}
}

// PackRegion serialises the patch's values over region (which must lie in
// the patch's ghost-inclusive bounds) field-major. Rows along x are
// contiguous in the patch layout, so each is copied as a block.
func (p *Patch) PackRegion(region amr.Box) []float64 {
	return p.PackRegionInto(region, make([]float64, 0, NFields*region.Size()))
}

// PackRegionInto is PackRegion appending into a caller-supplied buffer
// (typically a pooled simmpi payload buffer), which must be empty with
// sufficient capacity.
func (p *Patch) PackRegionInto(region amr.Box, out []float64) []float64 {
	nx := region.Hi[0] - region.Lo[0]
	for f := 0; f < NFields; f++ {
		for k := region.Lo[2]; k < region.Hi[2]; k++ {
			for j := region.Lo[1]; j < region.Hi[1]; j++ {
				off := p.offset(f, region.Lo[0], j, k)
				out = append(out, p.data[off:off+nx]...)
			}
		}
	}
	return out
}

// UnpackRegion writes serialised values into the patch over region,
// row-blocked like PackRegion.
func (p *Patch) UnpackRegion(region amr.Box, data []float64) {
	nx := region.Hi[0] - region.Lo[0]
	idx := 0
	for f := 0; f < NFields; f++ {
		for k := region.Lo[2]; k < region.Hi[2]; k++ {
			for j := region.Lo[1]; j < region.Hi[1]; j++ {
				off := p.offset(f, region.Lo[0], j, k)
				copy(p.data[off:off+nx], data[idx:idx+nx])
				idx += nx
			}
		}
	}
}

// GhostBox returns the patch's ghost-inclusive bounds.
func (p *Patch) GhostBox() amr.Box { return p.Box.Grow(p.G) }

// MaxWaveSpeed returns the maximum |u|+c over interior cells.
func (p *Patch) MaxWaveSpeed() float64 {
	var q [NFields]float64
	var m float64
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				p.State(i, j, k, q[:])
				if s := maxWaveSpeed(q[:]); s > m {
					m = s
				}
			}
		}
	}
	return m
}

// SweepDim performs one dimensionally split Godunov sweep along dimension
// d with Courant ratio lam = dt/h. Ghost cells must be valid; the caller
// refreshes ghosts between sweeps (as the original does), which makes the
// update exactly conservative across patch boundaries. The update is
// Jacobi-style: fluxes are evaluated on the pre-sweep data.
//
// The sweep works pencil by pencil along d: every cell's primitive
// decomposition is computed once and every interface flux once, where
// the naive per-cell stencil evaluates each interface twice (as both a
// right and a left flux) and each cell's primitives four times. Flux
// values are bit-identical to the naive form — the same hllFlux
// arithmetic on the same pre-sweep states — and the Jacobi update makes
// cell results independent of traversal order. No pre-sweep snapshot of
// the patch is needed: the stencil reads only along the pencil, the
// gather buffer holds the pencil's pre-sweep states, and writes to one
// pencil are never read by another.
func (p *Patch) SweepDim(d int, lam float64) {
	n := p.Box.Extent(d)
	if cap(p.states) < (n+2)*NFields {
		p.states = make([]float64, (n+2)*NFields)
		p.prims = make([]prim, n+2)
		p.fluxes = make([]float64, (n+1)*NFields)
	}
	states := p.states[:(n+2)*NFields]
	prims := p.prims[:n+2]
	fluxes := p.fluxes[:(n+1)*NFields]
	strides := [3]int{1, p.ex[0], p.ex[0] * p.ex[1]}
	cellStride := strides[d]
	fieldStride := p.ex[0] * p.ex[1] * p.ex[2]
	u, v := (d+1)%3, (d+2)%3
	var at [3]int
	at[d] = p.Box.Lo[d] - 1 // pencil origin: one ghost before the interior
	for bv := p.Box.Lo[v]; bv < p.Box.Hi[v]; bv++ {
		at[v] = bv
		for bu := p.Box.Lo[u]; bu < p.Box.Hi[u]; bu++ {
			at[u] = bu
			base := p.offset(0, at[0], at[1], at[2])
			// Gather the pencil's n+2 pre-sweep states and decompose
			// each once.
			for c := 0; c < n+2; c++ {
				off := base + c*cellStride
				q := states[c*NFields : (c+1)*NFields]
				for f := 0; f < NFields; f++ {
					q[f] = p.data[off+f*fieldStride]
				}
				prims[c] = toPrim(q)
			}
			// One HLL solve per interface.
			for m := 0; m <= n; m++ {
				hllFluxP(states[m*NFields:(m+1)*NFields],
					states[(m+1)*NFields:(m+2)*NFields],
					prims[m], prims[m+1], d,
					fluxes[m*NFields:(m+1)*NFields])
			}
			// Conservative update of the n interior cells.
			for c := 0; c < n; c++ {
				off := base + (c+1)*cellStride
				q := states[(c+1)*NFields : (c+2)*NFields]
				fl := fluxes[c*NFields : (c+1)*NFields]
				fr := fluxes[(c+1)*NFields : (c+2)*NFields]
				for f := 0; f < NFields; f++ {
					p.data[off+f*fieldStride] = q[f] - lam*(fr[f]-fl[f])
				}
			}
		}
	}
}

// TagCells marks cells whose relative density gradient exceeds threshold.
func (p *Patch) TagCells(tags amr.TagSet, threshold float64) {
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				r := p.At(QRho, i, j, k)
				if r <= 0 {
					continue
				}
				g := 0.0
				for _, d := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
					diff := p.At(QRho, i+d[0], j+d[1], k+d[2]) - p.At(QRho, i-d[0], j-d[1], k-d[2])
					if a := diff / r; a < 0 {
						g -= a
					} else {
						g += a
					}
				}
				if g > threshold {
					tags.Add(i, j, k)
				}
			}
		}
	}
}

// Totals returns the interior sums of every field times the cell volume
// weight w (for conservation accounting).
func (p *Patch) Totals(w float64) [NFields]float64 {
	var t [NFields]float64
	for f := 0; f < NFields; f++ {
		for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
			for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
				for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
					t[f] += p.At(f, i, j, k) * w
				}
			}
		}
	}
	return t
}
