package hyperclaw

import (
	"repro/internal/amr"
)

// ghostWidth is the halo width of every patch (first-order Godunov).
const ghostWidth = 1

// Patch is the field data on one AMR box, with ghost cells. Data is laid
// out field-major, x-fastest within each field.
type Patch struct {
	Box     amr.Box
	G       int
	ex      [3]int // ghost-inclusive extents
	data    []float64
	scratch []float64 // sweep source buffer, allocated lazily
}

// NewPatch allocates a zeroed patch over the given box.
func NewPatch(b amr.Box) *Patch {
	p := &Patch{Box: b, G: ghostWidth}
	for d := 0; d < 3; d++ {
		p.ex[d] = b.Extent(d) + 2*p.G
	}
	p.data = make([]float64, NFields*p.ex[0]*p.ex[1]*p.ex[2])
	return p
}

// offset maps global cell coordinates (which may lie in the ghost region)
// and a field index to a data offset.
func (p *Patch) offset(f, i, j, k int) int {
	li := i - p.Box.Lo[0] + p.G
	lj := j - p.Box.Lo[1] + p.G
	lk := k - p.Box.Lo[2] + p.G
	return ((f*p.ex[2]+lk)*p.ex[1]+lj)*p.ex[0] + li
}

// At reads field f at global cell (i, j, k).
func (p *Patch) At(f, i, j, k int) float64 { return p.data[p.offset(f, i, j, k)] }

// Set writes field f at global cell (i, j, k).
func (p *Patch) Set(f, i, j, k int, v float64) { p.data[p.offset(f, i, j, k)] = v }

// State returns the NFields conserved values at a cell as a slice
// (allocating; used by the solver through state buffers instead).
func (p *Patch) State(i, j, k int, out []float64) {
	for f := 0; f < NFields; f++ {
		out[f] = p.At(f, i, j, k)
	}
}

// Fill initialises every interior cell from a function of global cell
// coordinates.
func (p *Patch) Fill(fn func(i, j, k int) [NFields]float64) {
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				q := fn(i, j, k)
				for f := 0; f < NFields; f++ {
					p.Set(f, i, j, k, q[f])
				}
			}
		}
	}
}

// PackRegion serialises the patch's values over region (which must lie in
// the patch's ghost-inclusive bounds) field-major.
func (p *Patch) PackRegion(region amr.Box) []float64 {
	out := make([]float64, 0, NFields*region.Size())
	for f := 0; f < NFields; f++ {
		for k := region.Lo[2]; k < region.Hi[2]; k++ {
			for j := region.Lo[1]; j < region.Hi[1]; j++ {
				for i := region.Lo[0]; i < region.Hi[0]; i++ {
					out = append(out, p.At(f, i, j, k))
				}
			}
		}
	}
	return out
}

// UnpackRegion writes serialised values into the patch over region.
func (p *Patch) UnpackRegion(region amr.Box, data []float64) {
	idx := 0
	for f := 0; f < NFields; f++ {
		for k := region.Lo[2]; k < region.Hi[2]; k++ {
			for j := region.Lo[1]; j < region.Hi[1]; j++ {
				for i := region.Lo[0]; i < region.Hi[0]; i++ {
					p.Set(f, i, j, k, data[idx])
					idx++
				}
			}
		}
	}
}

// GhostBox returns the patch's ghost-inclusive bounds.
func (p *Patch) GhostBox() amr.Box { return p.Box.Grow(p.G) }

// MaxWaveSpeed returns the maximum |u|+c over interior cells.
func (p *Patch) MaxWaveSpeed() float64 {
	var q [NFields]float64
	var m float64
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				p.State(i, j, k, q[:])
				if s := maxWaveSpeed(q[:]); s > m {
					m = s
				}
			}
		}
	}
	return m
}

// SweepDim performs one dimensionally split Godunov sweep along dimension
// d with Courant ratio lam = dt/h. Ghost cells must be valid; the caller
// refreshes ghosts between sweeps (as the original does), which makes the
// update exactly conservative across patch boundaries. The update is
// Jacobi-style: fluxes are evaluated on the pre-sweep data.
func (p *Patch) SweepDim(d int, lam float64) {
	if p.scratch == nil {
		p.scratch = make([]float64, len(p.data))
	}
	copy(p.scratch, p.data)
	src := Patch{Box: p.Box, G: p.G, ex: p.ex, data: p.scratch}
	var ql, qr, fl, fr [NFields]float64
	var step [3]int
	step[d] = 1
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				src.State(i-step[0], j-step[1], k-step[2], ql[:])
				src.State(i, j, k, qr[:])
				hllFlux(ql[:], qr[:], d, fl[:])
				src.State(i, j, k, ql[:])
				src.State(i+step[0], j+step[1], k+step[2], qr[:])
				hllFlux(ql[:], qr[:], d, fr[:])
				for f := 0; f < NFields; f++ {
					p.Set(f, i, j, k, src.At(f, i, j, k)-lam*(fr[f]-fl[f]))
				}
			}
		}
	}
}

// TagCells marks cells whose relative density gradient exceeds threshold.
func (p *Patch) TagCells(tags amr.TagSet, threshold float64) {
	for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
		for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
			for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
				r := p.At(QRho, i, j, k)
				if r <= 0 {
					continue
				}
				g := 0.0
				for _, d := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
					diff := p.At(QRho, i+d[0], j+d[1], k+d[2]) - p.At(QRho, i-d[0], j-d[1], k-d[2])
					if a := diff / r; a < 0 {
						g -= a
					} else {
						g += a
					}
				}
				if g > threshold {
					tags.Add(i, j, k)
				}
			}
		}
	}
}

// Totals returns the interior sums of every field times the cell volume
// weight w (for conservation accounting).
func (p *Patch) Totals(w float64) [NFields]float64 {
	var t [NFields]float64
	for f := 0; f < NFields; f++ {
		for k := p.Box.Lo[2]; k < p.Box.Hi[2]; k++ {
			for j := p.Box.Lo[1]; j < p.Box.Hi[1]; j++ {
				for i := p.Box.Lo[0]; i < p.Box.Hi[0]; i++ {
					t[f] += p.At(f, i, j, k) * w
				}
			}
		}
	}
	return t
}
