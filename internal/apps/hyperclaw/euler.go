// Package hyperclaw reproduces HyperCLaw, the adaptive-mesh-refinement
// gas-dynamics framework of the paper's §8: hyperbolic conservation laws
// solved by a Godunov method on a dynamically refined grid hierarchy,
// applied to a Mach 1.25 shock in air striking a spherical helium bubble
// (after Haas & Sturtevant).
//
// This file implements the gas dynamics: the compressible Euler equations
// for a two-component gas (air + helium tracked by a mass fraction, which
// sets the local ratio of specific heats), advanced with dimensionally
// split first-order Godunov sweeps using an HLL approximate Riemann
// solver. The original's higher-order reconstruction is simplified to
// piecewise-constant states; the data structures, flux structure and AMR
// machinery are preserved (see DESIGN.md).
package hyperclaw

import "math"

// Field indices of the conserved state vector.
const (
	QRho  = iota // density
	QMx          // x momentum
	QMy          // y momentum
	QMz          // z momentum
	QEner        // total energy
	QRhoY        // partial density of helium (ρ·Y)
	NFields
)

// Gas constants: diatomic air and monatomic helium.
const (
	GammaAir = 1.4
	GammaHe  = 5.0 / 3.0
)

// gammaOf returns the effective ratio of specific heats for helium mass
// fraction y.
func gammaOf(y float64) float64 {
	if y <= 0 {
		return GammaAir
	}
	if y >= 1 {
		return GammaHe
	}
	return GammaAir + (GammaHe-GammaAir)*y
}

// prim holds primitive variables extracted from a conserved state.
type prim struct {
	rho, u, v, w, p, y, c float64
}

// toPrim converts a conserved state (6 contiguous values) to primitives.
func toPrim(q []float64) prim {
	rho := q[QRho]
	if rho < 1e-12 {
		rho = 1e-12
	}
	u := q[QMx] / rho
	v := q[QMy] / rho
	w := q[QMz] / rho
	y := q[QRhoY] / rho
	g := gammaOf(y)
	kin := 0.5 * rho * (u*u + v*v + w*w)
	p := (g - 1) * (q[QEner] - kin)
	if p < 1e-12 {
		p = 1e-12
	}
	return prim{rho: rho, u: u, v: v, w: w, p: p, y: y, c: math.Sqrt(g * p / rho)}
}

// conserved assembles a state vector from primitives.
func conserved(rho, u, v, w, p, y float64) [NFields]float64 {
	g := gammaOf(y)
	var q [NFields]float64
	q[QRho] = rho
	q[QMx] = rho * u
	q[QMy] = rho * v
	q[QMz] = rho * w
	q[QEner] = p/(g-1) + 0.5*rho*(u*u+v*v+w*w)
	q[QRhoY] = rho * y
	return q
}

// flux computes the Euler flux of state q along dimension d into out.
func flux(q []float64, d int, out []float64) {
	fluxP(q, toPrim(q), d, out)
}

// fluxP is flux with the primitive decomposition of q already in hand.
// It performs the exact operation sequence of the fused version, so
// callers that reuse one toPrim result across several flux evaluations
// get bit-identical values.
func fluxP(q []float64, pr prim, d int, out []float64) {
	var un float64
	switch d {
	case 0:
		un = pr.u
	case 1:
		un = pr.v
	default:
		un = pr.w
	}
	out[QRho] = q[QRho] * un
	out[QMx] = q[QMx] * un
	out[QMy] = q[QMy] * un
	out[QMz] = q[QMz] * un
	out[QMx+d] += pr.p
	out[QEner] = (q[QEner] + pr.p) * un
	out[QRhoY] = q[QRhoY] * un
}

// hllFlux computes the HLL approximate Riemann flux between left and
// right states along dimension d.
func hllFlux(ql, qr []float64, d int, out []float64) {
	hllFluxP(ql, qr, toPrim(ql), toPrim(qr), d, out)
}

// hllFluxP is hllFlux with both primitive decompositions precomputed.
// The sweep kernel converts each cell once per pencil and evaluates each
// interface once, instead of the 4 toPrim + 2 hllFlux per cell the naive
// stencil pays; the arithmetic per interface is unchanged.
func hllFluxP(ql, qr []float64, pl, pr prim, d int, out []float64) {
	var ul, ur float64
	switch d {
	case 0:
		ul, ur = pl.u, pr.u
	case 1:
		ul, ur = pl.v, pr.v
	default:
		ul, ur = pl.w, pr.w
	}
	sl := math.Min(ul-pl.c, ur-pr.c)
	sr := math.Max(ul+pl.c, ur+pr.c)
	var fl, fr [NFields]float64
	switch {
	case sl >= 0:
		fluxP(ql, pl, d, out)
	case sr <= 0:
		fluxP(qr, pr, d, out)
	default:
		fluxP(ql, pl, d, fl[:])
		fluxP(qr, pr, d, fr[:])
		inv := 1 / (sr - sl)
		for f := 0; f < NFields; f++ {
			out[f] = (sr*fl[f] - sl*fr[f] + sl*sr*(qr[f]-ql[f])) * inv
		}
	}
}

// maxWaveSpeed returns |u|+c maximised over the three directions.
func maxWaveSpeed(q []float64) float64 {
	pr := toPrim(q)
	m := math.Abs(pr.u)
	if a := math.Abs(pr.v); a > m {
		m = a
	}
	if a := math.Abs(pr.w); a > m {
		m = a
	}
	return m + pr.c
}

// Shock-tube initial conditions (Haas & Sturtevant configuration): a
// Mach 1.25 shock in air approaching a spherical helium bubble.
type initialConditions struct {
	shockX  float64 // shock plane position (fraction of domain x)
	bubbleX float64 // bubble centre
	bubbleY float64
	bubbleZ float64
	bubbleR float64 // bubble radius (fraction of domain y extent)
}

var shockBubbleIC = initialConditions{
	shockX: 0.10, bubbleX: 0.25, bubbleY: 0.5, bubbleZ: 0.5, bubbleR: 0.35,
}

// Post-shock state for a Mach 1.25 shock in air at (ρ,p) = (1,1)
// (Rankine-Hugoniot).
var (
	shockMach = 1.25
	postRho   = (GammaAir + 1) * shockMach * shockMach /
		((GammaAir-1)*shockMach*shockMach + 2) // ≈ 1.429
	postP = 1 + 2*GammaAir/(GammaAir+1)*(shockMach*shockMach-1) // ≈ 1.656
	postU = shockMach * math.Sqrt(GammaAir) * (1 - 1/postRho)   // piston speed
	// heliumRhoRatio is helium's density relative to air at equal
	// pressure and temperature.
	heliumRhoRatio = 0.138
)

// initialState returns the conserved state at physical coordinates
// (x, y, z) in [0,1]³ (x along the tube).
func initialState(x, y, z float64, ic initialConditions) [NFields]float64 {
	if x < ic.shockX {
		// Post-shock air moving right.
		return conserved(postRho, postU, 0, 0, postP, 0)
	}
	dx, dy, dz := x-ic.bubbleX, (y-ic.bubbleY)*0.125, (z-ic.bubbleZ)*0.0625
	// The domain is 512×64×32, so y and z are squashed relative to x;
	// the bubble is spherical in physical units.
	r := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if r < ic.bubbleR*0.125 {
		return conserved(heliumRhoRatio, 0, 0, 0, 1, 1)
	}
	return conserved(1, 0, 0, 0, 1, 0)
}
