package hyperclaw

import (
	"repro/internal/amr"
)

// BCType selects the physical boundary treatment.
type BCType int

const (
	// Outflow extrapolates (zero-gradient) at the domain boundary.
	Outflow BCType = iota
	// Reflect mirrors the state with the normal momentum negated
	// (solid walls; conserves mass and energy exactly, used in tests).
	Reflect
)

// Level is one tier of the AMR hierarchy. Box lists and ownership are
// replicated metadata (as in BoxLib); patch data lives on the owner.
type Level struct {
	Index  int
	Ratio  int     // refinement ratio to the next coarser level (1 at base)
	Domain amr.Box // this level's index-space domain
	Boxes  []amr.Box
	Owner  []int
	Patch  map[int]*Patch // box index → data (owned boxes only)
	H      float64        // cell width
}

// newLevel builds a level with the given box list, distributing boxes by
// the knapsack balancer.
func newLevel(idx, ratio int, domain amr.Box, boxes []amr.Box, nprocs int, copying bool, h float64) *Level {
	w := amr.BoxWeights(boxes)
	var owner amr.Assignment
	if copying {
		owner = amr.KnapsackCopying(w, nprocs)
	} else {
		owner = amr.KnapsackPointer(w, nprocs)
	}
	return &Level{
		Index: idx, Ratio: ratio, Domain: domain,
		Boxes: boxes, Owner: owner,
		Patch: make(map[int]*Patch), H: h,
	}
}

// allocate creates empty patches for this rank's boxes.
func (l *Level) allocate(me int) {
	for i, o := range l.Owner {
		if o == me {
			l.Patch[i] = NewPatch(l.Boxes[i])
		}
	}
}

// CellCount returns the total cells of the level's box list.
func (l *Level) CellCount() int { return amr.TotalCells(l.Boxes) }

// LocalCells returns the cells owned by rank me.
func (l *Level) LocalCells(me int) int {
	n := 0
	for i, o := range l.Owner {
		if o == me {
			n += l.Boxes[i].Size()
		}
	}
	return n
}

// applyDomainBC fills a patch's ghost cells that lie outside the level
// domain.
func applyDomainBC(p *Patch, domain amr.Box, bc BCType) {
	gb := p.GhostBox()
	if domain.ContainsBox(gb) {
		return // no ghost cell leaves the domain: nothing to fill
	}
	for k := gb.Lo[2]; k < gb.Hi[2]; k++ {
		for j := gb.Lo[1]; j < gb.Hi[1]; j++ {
			for i := gb.Lo[0]; i < gb.Hi[0]; i++ {
				if domain.Contains([3]int{i, j, k}) {
					continue
				}
				// Mirror (reflect) or clamp (outflow) source cell.
				si, sj, sk := i, j, k
				var flip [NFields]float64
				for f := range flip {
					flip[f] = 1
				}
				reflectIdx := func(v, lo, hi int, mom int) int {
					switch {
					case v < lo:
						if bc == Reflect {
							flip[mom] = -1
							return 2*lo - 1 - v
						}
						return lo
					case v >= hi:
						if bc == Reflect {
							flip[mom] = -1
							return 2*hi - 1 - v
						}
						return hi - 1
					}
					return v
				}
				si = reflectIdx(si, domain.Lo[0], domain.Hi[0], QMx)
				sj = reflectIdx(sj, domain.Lo[1], domain.Hi[1], QMy)
				sk = reflectIdx(sk, domain.Lo[2], domain.Hi[2], QMz)
				// The mirrored source must itself be a valid interior or
				// already-filled ghost cell of this patch; clamp into the
				// patch interior for safety.
				si = clampInt(si, p.Box.Lo[0], p.Box.Hi[0]-1)
				sj = clampInt(sj, p.Box.Lo[1], p.Box.Hi[1]-1)
				sk = clampInt(sk, p.Box.Lo[2], p.Box.Hi[2]-1)
				for f := 0; f < NFields; f++ {
					p.Set(f, i, j, k, p.At(f, si, sj, sk)*flip[f])
				}
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// prolongate writes piecewise-constant coarse values into fine cells of
// region (fine index space), reading from a packed coarse region buffer.
// Cells inside skip (the patch interior) are left untouched when
// interiorOnly ghost filling is requested.
// Rows along x are processed as up to two contiguous segments (the row
// minus the interior span when skipInterior applies), so the per-cell
// Contains test happens once per row, not once per cell. Within a
// segment the fine cells are walked coarse-cell by coarse-cell: each
// coarse value covers a run of up to ratio fine cells, so the division
// and the coarse load happen once per run.
func prolongate(dst *Patch, fineRegion amr.Box, coarseRegion amr.Box, coarseData []float64, ratio int, skipInterior bool) {
	cext := [3]int{coarseRegion.Extent(0), coarseRegion.Extent(1), coarseRegion.Extent(2)}
	csize := cext[0] * cext[1] * cext[2]
	lo, hi := fineRegion.Lo[0], fineRegion.Hi[0]
	fieldStride := dst.ex[0] * dst.ex[1] * dst.ex[2]
	for k := fineRegion.Lo[2]; k < fineRegion.Hi[2]; k++ {
		ck := floorDiv(k, ratio) - coarseRegion.Lo[2]
		inK := k >= dst.Box.Lo[2] && k < dst.Box.Hi[2]
		for j := fineRegion.Lo[1]; j < fineRegion.Hi[1]; j++ {
			cj := floorDiv(j, ratio) - coarseRegion.Lo[1]
			segs := [2][2]int{{lo, hi}}
			if skipInterior && inK && j >= dst.Box.Lo[1] && j < dst.Box.Hi[1] {
				segs[0] = [2]int{lo, min(hi, dst.Box.Lo[0])}
				segs[1] = [2]int{max(lo, dst.Box.Hi[0]), hi}
			}
			crow := (ck*cext[1]+cj)*cext[0] - coarseRegion.Lo[0]
			frow := dst.offset(0, 0, j, k)
			for f := 0; f < NFields; f++ {
				rowBase := f*csize + crow
				rowOff := frow + f*fieldStride
				for _, sg := range segs {
					for i := sg[0]; i < sg[1]; {
						ci := floorDiv(i, ratio)
						run := (ci + 1) * ratio
						if run > sg[1] {
							run = sg[1]
						}
						v := coarseData[rowBase+ci]
						for ; i < run; i++ {
							dst.data[rowOff+i] = v
						}
					}
				}
			}
		}
	}
}

// restrictRegion averages fine patch data down onto the coarse cells of
// coarseRegion (coarse index space), returning the packed averages.
func restrictRegion(src *Patch, coarseRegion amr.Box, ratio int) []float64 {
	return restrictRegionInto(src, coarseRegion, ratio,
		make([]float64, 0, NFields*coarseRegion.Size()))
}

// restrictRegionInto is restrictRegion writing into a caller-supplied
// buffer (typically a pooled simmpi payload buffer), which must be empty
// with sufficient capacity. Every element is written, so the buffer need
// not be zeroed.
func restrictRegionInto(src *Patch, coarseRegion amr.Box, ratio int, buf []float64) []float64 {
	cext := [3]int{coarseRegion.Extent(0), coarseRegion.Extent(1), coarseRegion.Extent(2)}
	csize := cext[0] * cext[1] * cext[2]
	out := buf[:NFields*csize]
	inv := 1.0 / float64(ratio*ratio*ratio)
	for f := 0; f < NFields; f++ {
		base := f * csize
		for ck := coarseRegion.Lo[2]; ck < coarseRegion.Hi[2]; ck++ {
			for cj := coarseRegion.Lo[1]; cj < coarseRegion.Hi[1]; cj++ {
				for ci := coarseRegion.Lo[0]; ci < coarseRegion.Hi[0]; ci++ {
					var sum float64
					for dk := 0; dk < ratio; dk++ {
						for dj := 0; dj < ratio; dj++ {
							for di := 0; di < ratio; di++ {
								sum += src.At(f, ci*ratio+di, cj*ratio+dj, ck*ratio+dk)
							}
						}
					}
					idx := base + ((ck-coarseRegion.Lo[2])*cext[1]+(cj-coarseRegion.Lo[1]))*cext[0] + (ci - coarseRegion.Lo[0])
					out[idx] = sum * inv
				}
			}
		}
	}
	return out
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
