package hyperclaw

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/amr"
)

// The physics of a HyperCLaw run — the field data, the CFL-limited time
// steps, and the density-gradient regrid tags — depends only on the
// problem configuration and the rank count, never on the machine being
// modelled: the machine spec (and rank mapping) enters the simulation
// exclusively through the communication and compute cost model. Figure 8
// therefore recomputes an identical PDE trajectory once per machine
// column, and the optimisation studies re-run it per ablation variant
// that only re-costs the same physics.
//
// trajectory captures the few field-derived values the metadata side of
// a run actually consumes, so that repeat runs at the same (config,
// nprocs) point can skip every field-array operation — patch allocation,
// Godunov sweeps, ghost pack/unpack, prolongation, restriction — and
// replay pure metadata. Replay preserves the exact sequence of simmpi
// operations with identical tags, payload lengths, and nominal byte
// counts (every exchanged payload's length is NFields·|overlap|, a
// function of the box metadata alone), so the modelled Report is
// bit-identical to a full run's.
type trajectory struct {
	// vmax is the global maximum wave speed per computeDt call, in call
	// order (the only field quantity entering time-step control).
	vmax []float64
	// tagLens is, per regrid tagging round, each rank's packed local tag
	// payload length — it sets the allgather's nominal bytes.
	tagLens [][]int
	// tags is, per regrid tagging round, the global tag set every rank
	// derives from the allgather. Read-only once published.
	tags []amr.TagSet
}

// trajEntry is one cache slot. done is closed when the recording run
// finishes; traj stays nil if it failed, signalling waiters to re-claim.
type trajEntry struct {
	done chan struct{}
	traj *trajectory
}

var (
	trajMu    sync.Mutex
	trajCache = map[string]*trajEntry{}
)

func trajKey(cfg Config, procs int) string {
	return fmt.Sprintf("%+v|P=%d", cfg, procs)
}

// ResetTrajectoryCache drops every recorded trajectory. Benchmark
// bodies that promise fully cold iterations call this between runs.
func ResetTrajectoryCache() {
	trajMu.Lock()
	trajCache = map[string]*trajEntry{}
	trajMu.Unlock()
}

// trajRecorder publishes a trajectory recorded by a full-physics run.
type trajRecorder struct {
	key   string
	entry *trajEntry
	traj  *trajectory
}

// publish completes the recording: on success waiters replay the
// trajectory, on failure (aborted run) the slot is vacated so the next
// run at this point records instead.
func (rec *trajRecorder) publish(ok bool) {
	if ok {
		rec.entry.traj = rec.traj
	} else {
		trajMu.Lock()
		if trajCache[rec.key] == rec.entry {
			delete(trajCache, rec.key)
		}
		trajMu.Unlock()
	}
	close(rec.entry.done)
}

// acquireTrajectory resolves a (config, nprocs) point against the cache:
// a non-nil trajectory means replay it; a non-nil recorder means run the
// full physics and publish through it. Both nil (cancelled while
// waiting) means run the full physics unrecorded — the run is about to
// abort on ctx anyway.
func acquireTrajectory(ctx context.Context, key string) (*trajectory, *trajRecorder) {
	for {
		trajMu.Lock()
		e := trajCache[key]
		if e == nil {
			e = &trajEntry{done: make(chan struct{})}
			trajCache[key] = e
			trajMu.Unlock()
			return nil, &trajRecorder{key: key, entry: e, traj: &trajectory{}}
		}
		trajMu.Unlock()
		select {
		case <-e.done:
			if e.traj != nil {
				return e.traj, nil
			}
			// The recording run failed; loop and race to re-claim.
		case <-ctx.Done():
			return nil, nil
		}
	}
}
