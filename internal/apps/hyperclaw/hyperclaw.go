package hyperclaw

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/amr"
	"repro/internal/apps"
	"repro/internal/perfmodel"
	"repro/internal/simmpi"
)

// Meta is the Table 2 row for HyperCLaw.
var Meta = apps.Meta{
	Name:       "HyperCLaw",
	Lines:      69000,
	Discipline: "Gas Dynamics",
	Methods:    "Hyperbolic, High-order Godunov",
	Structure:  "Grid AMR",
	Scaling:    "weak",
}

// GodunovFlopsPerCell is the nominal per-cell per-step flop count of the
// dimensionally split Godunov update (three sweeps of Riemann solves).
const GodunovFlopsPerCell = 270

// GodunovKernel: "the numerical Godunov solver, although computationally
// intensive, requires substantial data movement that can degrade cache
// reuse" (§8.1) — hence the very low sustained fraction everywhere, and
// the low vector fraction that buries Phoenix (0.8% of peak at P=128).
var GodunovKernel = perfmodel.Kernel{
	Name: "hclaw-godunov", CPUFrac: 0.06, BytesPerFlop: 1.2,
	RandomFrac: 0.02, VectorFrac: 0.35,
}

// RegridKernel covers the knapsack and box-intersection machinery:
// irregular, pointer-chasing, non-vectorisable (§8.1).
var RegridKernel = perfmodel.Kernel{
	Name: "hclaw-regrid", CPUFrac: 0.08, BytesPerFlop: 1.0,
	RandomFrac: 0.03, VectorFrac: 0.05,
}

// Config describes one HyperCLaw run.
type Config struct {
	// NomBase is the nominal base grid (512×64×32 at the paper's P=16,
	// extended along x for weak scaling).
	NomBase [3]int
	// ActBase is the computed-on base grid.
	ActBase [3]int
	// Ratios are the refinement ratios between successive levels
	// (the paper refines by 2 and then 4).
	Ratios []int
	// Steps is the number of coarse time steps.
	Steps int
	// RegridInterval is the number of steps between regrids.
	RegridInterval int
	// TagThreshold is the relative density-gradient refinement criterion.
	TagThreshold float64
	// MaxBoxCells bounds generated box sizes.
	MaxBoxCells int
	// NomMaxBoxCells bounds nominal (paper-scale) box sizes, setting the
	// nominal box counts that drive regrid costs.
	NomMaxBoxCells int
	// BC is the domain boundary treatment.
	BC BCType
	// NaiveIntersect selects the original O(N²) box intersection
	// (§8.1 ablation; default is the hashed O(N log N) version).
	NaiveIntersect bool
	// CopyingKnapsack selects the original list-copying knapsack
	// (§8.1 ablation; default is the pointer-swap version).
	CopyingKnapsack bool
	// CFL is the time-step safety factor.
	CFL float64
}

// DefaultConfig is the paper's Figure 7 weak-scaling problem at laptop
// scale: the base grid extends along x with the processor count.
func DefaultConfig(procs int) Config {
	scale := procs / 16
	if scale < 1 {
		scale = 1
	}
	ax := 32 * scale
	if ax > 2048 {
		ax = 2048 // cap actual memory; nominal keeps scaling
	}
	// Box granularity: keep a few boxes per rank on the base level so the
	// knapsack can balance all ranks (the refined levels have more).
	boxCells := ax * 8 * 4 / (2 * procs)
	if boxCells < 32 {
		boxCells = 32
	}
	if boxCells > 512 {
		boxCells = 512
	}
	return Config{
		NomBase:        [3]int{512 * scale, 64, 32},
		ActBase:        [3]int{ax, 8, 4},
		Ratios:         []int{2, 4},
		Steps:          3,
		RegridInterval: 2,
		TagThreshold:   0.08,
		MaxBoxCells:    boxCells,
		NomMaxBoxCells: 32 * 32 * 32,
		BC:             Outflow,
		CFL:            0.4,
	}
}

func (c Config) validate() error {
	for d := 0; d < 3; d++ {
		if c.ActBase[d] < 4 || c.NomBase[d] < c.ActBase[d] {
			return fmt.Errorf("hyperclaw: bad base grids %v / %v", c.ActBase, c.NomBase)
		}
	}
	for _, r := range c.Ratios {
		if r < 2 {
			return fmt.Errorf("hyperclaw: refinement ratio %d < 2", r)
		}
	}
	if c.Steps < 1 || c.RegridInterval < 1 {
		return fmt.Errorf("hyperclaw: steps/regrid interval must be positive")
	}
	if c.CFL <= 0 || c.CFL > 0.9 {
		return fmt.Errorf("hyperclaw: CFL %g outside (0, 0.9]", c.CFL)
	}
	return nil
}

// State is the per-rank AMR hierarchy.
type State struct {
	cfg    Config
	r      *simmpi.Rank
	levels []*Level
	step   int
	tag    int
	// nominal-to-actual scaling of communication volumes (surface ratio).
	nomSurf float64
	// nominal cells of the base level.
	nomBaseCells float64
	// Cached intersection pair lists, rebuilt after each regrid (the
	// original's CopyAssoc caching — recomputing them per ghost fill is
	// exactly the §8.1 inefficiency).
	pairCache map[pairKey][]amr.Pair
	// gen counts regrids. All ranks regrid in lockstep, so the counter is
	// identical across ranks and scopes the world-level metadata memos:
	// replicated derivations (global tag sets, cluster box lists,
	// intersection pairs) are computed once per world per generation via
	// simmpi.Memo instead of once per rank, while each rank still charges
	// its own modelled cost.
	gen int
	// traj, when non-nil, is a recorded trajectory this run replays:
	// levels carry no patch data and every field-array operation is
	// skipped, while the simmpi operation sequence stays identical.
	traj *trajectory
	// rec, when non-nil, collects the trajectory (rank 0 appends; all
	// ranks observe identical values in identical order).
	rec *trajectory
	// trajVmax and trajTag are this rank's replay cursors.
	trajVmax int
	trajTag  int
}

// pairKey identifies one intersection pair list of the hierarchy. The
// fill and sweep loops look these up several times per step, so the key
// is a small comparable struct rather than a formatted string (Sprintf
// keys showed up in profiles of the per-step hot path).
type pairKey struct {
	kind pairKind
	lvl  int
}

type pairKind uint8

const (
	pairProlong pairKind = iota // coarse boxes × coarsened fine ghost boxes
	pairSame                    // level interiors × grown level boxes
	pairAvg                     // coarsened fine boxes × coarse boxes
	pairSeed                    // parent boxes × coarsened new boxes
	pairRecopy                  // old level boxes × new level boxes
)

// hclawMemoKey scopes a world-level metadata memo (tag sets, box lists,
// intersection pairs) to the current regrid generation.
type hclawMemoKey struct {
	what  pairKind
	naive bool
	lvl   int
	gen   int
}

// regridMemoKey scopes the regrid pipeline's replicated derivations.
type regridMemoKey struct {
	what byte // 't' = global tag set, 'b' = clustered box list
	lvl  int
	gen  int
}

// cachedIntersect returns the intersection pairs under a cache key,
// computing and charging them only on the first use since the last
// regrid. Same-level lists drop their self pairs (box i ∩ grown(i)):
// copying a patch's interior onto itself is a no-op the exchange loop
// would otherwise pack in full before discarding. Every rank derives the
// identical filtered list, so tags stay aligned.
func (s *State) cachedIntersect(k pairKey, a, b []amr.Box) []amr.Pair {
	if s.pairCache == nil {
		s.pairCache = make(map[pairKey][]amr.Pair)
	}
	if pairs, ok := s.pairCache[k]; ok {
		return pairs
	}
	pairs := s.intersect(k, a, b)
	if k.kind == pairSame {
		trimmed := make([]amr.Pair, 0, len(pairs))
		for _, pr := range pairs {
			if pr.A != pr.B {
				trimmed = append(trimmed, pr)
			}
		}
		pairs = trimmed
	}
	s.pairCache[k] = pairs
	return pairs
}

func (s *State) invalidatePairCache() { s.pairCache = nil }

// NewState builds the initial hierarchy: a chopped, knapsack-distributed
// base level covering the domain, then initial refinement levels from
// tagging the initial conditions.
func NewState(r *simmpi.Rank, cfg Config) (*State, error) {
	return newState(r, cfg, nil, nil)
}

// newState is NewState with replay/record wiring: traj non-nil replays a
// recorded trajectory without field data, rec non-nil records one.
func newState(r *simmpi.Rank, cfg Config, traj, rec *trajectory) (*State, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &State{cfg: cfg, r: r, traj: traj, rec: rec}
	actCells := float64(cfg.ActBase[0]) * float64(cfg.ActBase[1]) * float64(cfg.ActBase[2])
	s.nomBaseCells = float64(cfg.NomBase[0]) * float64(cfg.NomBase[1]) * float64(cfg.NomBase[2])
	s.nomSurf = math.Pow(s.nomBaseCells/actCells, 2.0/3.0)

	domain := amr.NewBox([3]int{0, 0, 0}, cfg.ActBase)
	base := amr.ChopAll([]amr.Box{domain}, cfg.MaxBoxCells)
	l0 := newLevel(0, 1, domain, base, r.N(), cfg.CopyingKnapsack, 1.0/float64(cfg.ActBase[0]))
	if s.traj == nil {
		l0.allocate(r.ID())
	}
	s.levels = []*Level{l0}
	s.initPatches(l0)
	s.fillGhosts(0)
	// Build the initial refinement hierarchy from the initial conditions,
	// then load every level with the exact initial state (the prolongated
	// data seeded by regrid is only needed for tagging).
	s.regrid()
	for _, l := range s.levels {
		s.initPatches(l)
	}
	s.fillAllGhosts()
	return s, nil
}

// initPatches loads the shock-bubble initial conditions into a level's
// local patches.
func (s *State) initPatches(l *Level) {
	nx := float64(s.cfg.ActBase[0] * cumRatio(s.cfg.Ratios, l.Index))
	ny := float64(s.cfg.ActBase[1] * cumRatio(s.cfg.Ratios, l.Index))
	nz := float64(s.cfg.ActBase[2] * cumRatio(s.cfg.Ratios, l.Index))
	for _, p := range l.Patch {
		p.Fill(func(i, j, k int) [NFields]float64 {
			x := (float64(i) + 0.5) / nx
			y := (float64(j) + 0.5) / ny
			z := (float64(k) + 0.5) / nz
			return initialState(x, y, z, shockBubbleIC)
		})
	}
}

// cumRatio returns the cumulative refinement ratio of level idx.
func cumRatio(ratios []int, idx int) int {
	r := 1
	for i := 0; i < idx; i++ {
		r *= ratios[i]
	}
	return r
}

func (s *State) nextTag() int {
	s.tag++
	return s.tag
}

// intersect dispatches to the configured box-intersection algorithm and
// charges its nominal cost (§8.1: O(N²) versus hashed O(N log N), with
// nominal box counts scaled up from the actual hierarchy). The box lists
// are replicated metadata — identical on every rank — so the actual pair
// computation runs once per world under key; the modelled cost is still
// charged by every caller.
func (s *State) intersect(k pairKey, a, b []amr.Box) []amr.Pair {
	nomBoxes := s.nominalBoxes(len(a) + len(b))
	mk := hclawMemoKey{what: k.kind, naive: s.cfg.NaiveIntersect, lvl: k.lvl, gen: s.gen}
	var ops float64
	var pairs []amr.Pair
	if s.cfg.NaiveIntersect {
		pairs = s.r.Memo(mk, func() any {
			return amr.IntersectNaive(a, b)
		}).([]amr.Pair)
		ops = nomBoxes * nomBoxes
	} else {
		pairs = s.r.Memo(mk, func() any {
			return amr.IntersectHashed(a, b)
		}).([]amr.Pair)
		ops = nomBoxes * (1 + math.Log2(math.Max(nomBoxes, 2))) * 4
	}
	s.r.Compute(RegridKernel, ops*12)
	return pairs
}

// nominalBoxes scales an actual box count to the nominal hierarchy.
func (s *State) nominalBoxes(actual int) float64 {
	actCells := float64(s.cfg.ActBase[0]) * float64(s.cfg.ActBase[1]) * float64(s.cfg.ActBase[2])
	cellRatio := s.nomBaseCells / actCells
	boxRatio := cellRatio * float64(s.cfg.MaxBoxCells) / float64(s.cfg.NomMaxBoxCells)
	if boxRatio < 1 {
		boxRatio = 1
	}
	return float64(actual) * boxRatio
}

// exchangePairs performs the point-to-point copies for a list of overlap
// pairs: for pair (src box of level ls, dst region on level ld). pack
// extracts data from the source patch; apply stores received data at the
// destination. Every rank walks the identical pair list, so tags line up
// without negotiation (replicated-metadata style, as in BoxLib).
func (s *State) exchangePairs(pairs []amr.Pair, srcOwner, dstOwner []int,
	pack func(pair amr.Pair) []float64, apply func(pair amr.Pair, data []float64)) {

	me := s.r.ID()
	baseTag := s.tag
	s.tag += len(pairs)
	if s.traj != nil {
		// Replay: the payload of every pair is NFields·|overlap| values —
		// pure box metadata — so the messages fly with nil bodies and the
		// identical nominal byte counts, and pack/apply never run.
		for i, pr := range pairs {
			if srcOwner[pr.A] == me && dstOwner[pr.B] != me {
				s.r.SendOwnedNominal(dstOwner[pr.B], baseTag+i+1, nil,
					float64(NFields*pr.Overlap.Size()*8)*s.nomSurf)
			}
		}
		for i, pr := range pairs {
			if dstOwner[pr.B] == me && srcOwner[pr.A] != me {
				s.r.Recv(srcOwner[pr.A], baseTag+i+1)
			}
		}
		return
	}
	// Like the original's nonblocking FillBoundary, all sends are posted
	// before any receive is waited on; interleaving them would serialise
	// the exchange in virtual time across the whole pair list.
	//
	// Pack buffers come from the world's pooled payload allocator and go
	// back to it the moment apply has consumed them: locally-applied and
	// received buffers are freed here, sent buffers transfer ownership to
	// the receiver (who frees them in its own loop). No apply callback
	// retains its data argument.
	for i, pr := range pairs {
		so, do := srcOwner[pr.A], dstOwner[pr.B]
		switch {
		case so == me && do == me:
			data := pack(pr)
			apply(pr, data)
			s.r.FreeBuf(data)
		case so == me:
			// pack builds a fresh or pooled buffer per pair, so ownership
			// can transfer to the receiver without a defensive copy. Every
			// pack produces exactly NFields·|overlap| values; charging from
			// the metadata keeps full and replay runs byte-identical.
			data := pack(pr)
			s.r.SendOwnedNominal(do, baseTag+i+1, data,
				float64(NFields*pr.Overlap.Size()*8)*s.nomSurf)
		}
	}
	for i, pr := range pairs {
		so, do := srcOwner[pr.A], dstOwner[pr.B]
		if do == me && so != me {
			data := s.r.Recv(so, baseTag+i+1)
			apply(pr, data)
			s.r.FreeBuf(data)
		}
	}
}

// fillGhosts refreshes the ghost cells of one level: prolongation from
// the next coarser level (fine levels only), same-level copies, then the
// physical boundary condition.
func (s *State) fillGhosts(li int) {
	t0 := s.r.Now()
	l := s.levels[li]
	if li > 0 {
		coarse := s.levels[li-1]
		// Ghost-region prolongation pairs: coarse boxes × coarsened
		// ghost boxes of fine patches.
		ghostBoxes := make([]amr.Box, len(l.Boxes))
		for i, b := range l.Boxes {
			g, ok := b.Grow(ghostWidth).Intersect(l.Domain)
			if !ok {
				g = b
			}
			ghostBoxes[i] = g.Coarsen(l.Ratio)
		}
		pairs := s.cachedIntersect(pairKey{pairProlong, li}, coarse.Boxes, ghostBoxes)
		s.exchangePairs(pairs, coarse.Owner, l.Owner,
			func(pr amr.Pair) []float64 {
				return coarse.Patch[pr.A].PackRegionInto(pr.Overlap,
					s.r.GetBuf(NFields*pr.Overlap.Size()))
			},
			func(pr amr.Pair, data []float64) {
				fineRegion, ok := pr.Overlap.Refine(l.Ratio).Intersect(l.Boxes[pr.B].Grow(ghostWidth))
				if !ok {
					return
				}
				prolongate(l.Patch[pr.B], fineRegion, pr.Overlap, data, l.Ratio, true)
			})
	}
	// Same-level copies: source interiors into destination ghosts.
	grown := make([]amr.Box, len(l.Boxes))
	for i, b := range l.Boxes {
		grown[i] = b.Grow(ghostWidth)
	}
	// Self pairs (a box's interior onto itself) are filtered out of the
	// cached list, so every remaining pair moves real data.
	pairs := s.cachedIntersect(pairKey{pairSame, li}, l.Boxes, grown)
	s.exchangePairs(pairs, l.Owner, l.Owner,
		func(pr amr.Pair) []float64 {
			return l.Patch[pr.A].PackRegionInto(pr.Overlap,
				s.r.GetBuf(NFields*pr.Overlap.Size()))
		},
		func(pr amr.Pair, data []float64) {
			l.Patch[pr.B].UnpackRegion(pr.Overlap, data)
		})
	for _, p := range l.Patch {
		applyDomainBC(p, l.Domain, s.cfg.BC)
	}
	s.r.AddPhase("ghostfill", s.r.Now()-t0)
}

// fillAllGhosts refreshes every level, coarse to fine.
func (s *State) fillAllGhosts() {
	for li := range s.levels {
		s.fillGhosts(li)
	}
}

// averageDown restricts fine data onto the coarse cells it covers,
// finest level first.
func (s *State) averageDown() {
	t0 := s.r.Now()
	for li := len(s.levels) - 1; li >= 1; li-- {
		fine := s.levels[li]
		coarse := s.levels[li-1]
		coarsened := make([]amr.Box, len(fine.Boxes))
		for i, b := range fine.Boxes {
			coarsened[i] = b.Coarsen(fine.Ratio)
		}
		pairs := s.cachedIntersect(pairKey{pairAvg, li}, coarsened, coarse.Boxes)
		// Here A indexes fine boxes (coarsened) and B coarse boxes.
		s.exchangePairs(pairs, fine.Owner, coarse.Owner,
			func(pr amr.Pair) []float64 {
				return restrictRegionInto(fine.Patch[pr.A], pr.Overlap, fine.Ratio,
					s.r.GetBuf(NFields*pr.Overlap.Size()))
			},
			func(pr amr.Pair, data []float64) {
				coarse.Patch[pr.B].UnpackRegion(pr.Overlap, data)
			})
	}
	s.r.AddPhase("avgdown", s.r.Now()-t0)
}

// regrid rebuilds refinement level li+1 (and deeper) from tags, growing
// the hierarchy if it is not full yet. Metadata is replicated: every rank
// gathers all tags and computes identical box lists and ownership.
func (s *State) regrid() {
	t0 := s.r.Now()
	s.gen++
	nLevelsWanted := len(s.cfg.Ratios) + 1
	// Rebuild from the finest existing coarse level.
	for li := 1; li < nLevelsWanted; li++ {
		parent := s.levels[li-1]
		ratio := s.cfg.Ratios[li-1]
		// Tag locally on the parent level, then exchange tags globally
		// (metadata allgather, as the original's grid generation step).
		// A replay run has no field data to tag: it re-issues the
		// allgather with the recorded payload length (which sets the
		// nominal bytes) and takes the recorded global tag set.
		var global amr.TagSet
		if s.traj != nil {
			packedLen := s.traj.tagLens[s.trajTag][s.r.ID()]
			s.r.AllgatherNominal(s.r.World(), nil,
				float64(packedLen*8)*s.nomSurf)
			global = s.traj.tags[s.trajTag]
			s.trajTag++
		} else {
			tags := amr.NewTagSet()
			for _, p := range parent.Patch {
				p.TagCells(tags, s.cfg.TagThreshold)
			}
			// Pack in sorted cell order: map iteration order is
			// randomized, and the packed payload is simulation input
			// (allgathered, replayed, recorded), so it must be
			// byte-identical across runs.
			cells := make([][3]int, 0, tags.Len())
			for c := range tags {
				cells = append(cells, c)
			}
			sort.Slice(cells, func(a, b int) bool {
				ca, cb := cells[a], cells[b]
				if ca[0] != cb[0] {
					return ca[0] < cb[0]
				}
				if ca[1] != cb[1] {
					return ca[1] < cb[1]
				}
				return ca[2] < cb[2]
			})
			packed := make([]float64, 0, 3*len(cells))
			for _, c := range cells {
				packed = append(packed, float64(c[0]), float64(c[1]), float64(c[2]))
			}
			all := s.r.AllgatherNominal(s.r.World(), packed,
				float64(len(packed)*8)*s.nomSurf)
			// Every rank receives the identical allgather result, so the
			// global tag set and the whole tags→boxes derivation below are
			// replicated metadata: compute each once per world and share.
			global = s.r.Memo(regridMemoKey{'t', li, s.gen}, func() any {
				g := amr.NewTagSet()
				for _, part := range all {
					for i := 0; i+2 < len(part); i += 3 {
						g.Add(int(part[i]), int(part[i+1]), int(part[i+2]))
					}
				}
				return g
			}).(amr.TagSet)
			if s.rec != nil && s.r.ID() == 0 {
				lens := make([]int, len(all))
				for i, part := range all {
					lens[i] = len(part)
				}
				s.rec.tagLens = append(s.rec.tagLens, lens)
				s.rec.tags = append(s.rec.tags, global)
			}
		}
		var newBoxes []amr.Box
		if global.Len() > 0 {
			newBoxes = s.r.Memo(regridMemoKey{'b', li, s.gen}, func() any {
				buffered := global.Buffer(1, parent.Domain)
				clusters := amr.Cluster(buffered, 0.7, 0)
				// Clip to the parent's region for proper nesting, then
				// refine into the new level's index space.
				var clipped []amr.Box
				for _, pr := range amr.IntersectHashed(clusters, parent.Boxes) {
					clipped = append(clipped, pr.Overlap)
				}
				refined := make([]amr.Box, len(clipped))
				for i, b := range clipped {
					refined[i] = b.Refine(ratio)
				}
				// Chop in the fine index space (ratio-aligned cuts),
				// sizing boxes so each rank gets a few grains of this
				// level: enough for the knapsack to balance, few enough
				// that the replicated box metadata stays bounded.
				total := amr.TotalCells(refined)
				boxCells := total / (3 * s.r.N())
				if min := ratio * ratio * ratio; boxCells < min {
					boxCells = min
				}
				return amr.ChopAllAligned(refined, boxCells, ratio)
			}).([]amr.Box)
		}
		// Charge the knapsack cost: the §8.1 copying variant scales with
		// the square of the nominal box count, the pointer version is
		// near-free.
		nomBoxes := s.nominalBoxes(len(newBoxes))
		if s.cfg.CopyingKnapsack {
			s.r.Compute(RegridKernel, nomBoxes*nomBoxes*8)
		} else {
			s.r.Compute(RegridKernel, nomBoxes*(1+math.Log2(math.Max(nomBoxes, 2)))*6)
		}
		domain := parent.Domain.Refine(ratio)
		lvl := newLevel(li, ratio, domain, newBoxes, s.r.N(), s.cfg.CopyingKnapsack,
			parent.H/float64(ratio))
		if s.traj == nil {
			lvl.allocate(s.r.ID())
		}
		// Fill new patches: prolongation from the parent everywhere,
		// then overwrite with old same-level data where it exists.
		coarsened := make([]amr.Box, len(newBoxes))
		for i, b := range newBoxes {
			coarsened[i] = b.Coarsen(ratio)
		}
		pairs := s.intersect(pairKey{pairSeed, li}, parent.Boxes, coarsened)
		s.exchangePairs(pairs, parent.Owner, lvl.Owner,
			func(pr amr.Pair) []float64 {
				return parent.Patch[pr.A].PackRegionInto(pr.Overlap,
					s.r.GetBuf(NFields*pr.Overlap.Size()))
			},
			func(pr amr.Pair, data []float64) {
				fineRegion := pr.Overlap.Refine(ratio)
				if ov, ok := fineRegion.Intersect(lvl.Boxes[pr.B]); ok {
					prolongate(lvl.Patch[pr.B], ov, pr.Overlap, data, ratio, false)
				}
			})
		if li < len(s.levels) {
			old := s.levels[li]
			pairs := s.intersect(pairKey{pairRecopy, li}, old.Boxes, newBoxes)
			s.exchangePairs(pairs, old.Owner, lvl.Owner,
				func(pr amr.Pair) []float64 {
					return old.Patch[pr.A].PackRegionInto(pr.Overlap,
						s.r.GetBuf(NFields*pr.Overlap.Size()))
				},
				func(pr amr.Pair, data []float64) {
					lvl.Patch[pr.B].UnpackRegion(pr.Overlap, data)
				})
			s.levels[li] = lvl
		} else {
			s.levels = append(s.levels, lvl)
		}
	}
	s.invalidatePairCache()
	s.r.AddPhase("regrid", s.r.Now()-t0)
}

// computeDt finds the global CFL-limited time step on the finest level's
// spacing (all levels advance together in this simplified scheme).
func (s *State) computeDt() float64 {
	var local float64 = 1e-12
	for _, l := range s.levels {
		for _, p := range l.Patch {
			if v := p.MaxWaveSpeed(); v > local {
				local = v
			}
		}
	}
	// The reduce's modelled cost is value-independent, so a replay run
	// issues it with a placeholder and substitutes the recorded global
	// maximum (patch-less levels contribute nothing to local).
	vmax := s.r.AllreduceScalar(s.r.World(), local, simmpi.OpMax)
	if s.traj != nil {
		vmax = s.traj.vmax[s.trajVmax]
		s.trajVmax++
	} else if s.rec != nil && s.r.ID() == 0 {
		s.rec.vmax = append(s.rec.vmax, vmax)
	}
	finest := s.levels[len(s.levels)-1]
	return s.cfg.CFL * finest.H / vmax
}

// Step advances the hierarchy one time step.
func (s *State) Step() {
	if s.step > 0 && s.step%s.cfg.RegridInterval == 0 {
		s.regrid()
		s.fillAllGhosts()
	}
	dt := s.computeDt()
	actBase := float64(s.cfg.ActBase[0]) * float64(s.cfg.ActBase[1]) * float64(s.cfg.ActBase[2])
	for d := 0; d < 3; d++ {
		s.fillAllGhosts()
		t0 := s.r.Now()
		for _, l := range s.levels {
			for _, p := range l.Patch {
				p.SweepDim(d, dt/l.H)
			}
			// Charge one sweep at nominal scale: actual cell share
			// scaled up to the nominal hierarchy.
			nomCells := float64(l.LocalCells(s.r.ID())) * s.nomBaseCells / actBase
			s.r.Compute(GodunovKernel, nomCells*GodunovFlopsPerCell/3)
		}
		s.r.AddPhase("godunov", s.r.Now()-t0)
	}
	s.averageDown()
	s.step++
}

// Levels returns the current number of hierarchy levels.
func (s *State) Levels() int { return len(s.levels) }

// LevelBoxes returns the box count of level li.
func (s *State) LevelBoxes(li int) int { return len(s.levels[li].Boxes) }

// GlobalTotals sums a conserved field over the base level with fine
// levels masked in (fine data replaces covered coarse data after
// averageDown, so the base-level integral is the conserved total).
func (s *State) GlobalTotals() [NFields]float64 {
	l0 := s.levels[0]
	var local [NFields]float64
	w := 1.0
	for _, p := range l0.Patch {
		t := p.Totals(w)
		for f := 0; f < NFields; f++ {
			local[f] += t[f]
		}
	}
	sum := s.r.Allreduce(s.r.World(), local[:], simmpi.OpSum)
	var out [NFields]float64
	copy(out[:], sum)
	return out
}

// ProbeDensity returns the base-level density at a global cell (only
// meaningful on the owner; others receive 0).
func (s *State) ProbeDensity(i, j, k int) float64 {
	l0 := s.levels[0]
	for bi, b := range l0.Boxes {
		if b.Contains([3]int{i, j, k}) {
			if p, ok := l0.Patch[bi]; ok {
				return p.At(QRho, i, j, k)
			}
			return 0
		}
	}
	return 0
}

// Run executes the HyperCLaw benchmark. The first run at a given
// (config, nprocs) point records its physics trajectory; repeat runs —
// Figure 8's per-machine columns, study ladders re-costing the same
// problem — replay it metadata-only with a bit-identical Report.
func Run(ctx context.Context, sim simmpi.Config, cfg Config) (*simmpi.Report, error) {
	traj, rec := acquireTrajectory(ctx, trajKey(cfg, sim.Procs))
	var recTraj *trajectory
	if rec != nil {
		recTraj = rec.traj
	}
	rep, err := simmpi.RunContext(ctx, sim, func(r *simmpi.Rank) {
		st, serr := newState(r, cfg, traj, recTraj)
		if serr != nil {
			panic(serr)
		}
		for i := 0; i < cfg.Steps; i++ {
			st.Step()
		}
		r.AllreduceScalar(r.World(), st.GlobalTotals()[QRho], simmpi.OpSum)
	})
	if rec != nil {
		rec.publish(err == nil)
	}
	return rep, err
}
