package hyperclaw

import (
	"context"
	"math"
	"testing"

	"repro/internal/amr"
	"repro/internal/machine"
	"repro/internal/simmpi"
)

func tinyCfg() Config {
	cfg := DefaultConfig(1)
	cfg.NomBase = [3]int{64, 8, 4}
	cfg.ActBase = [3]int{64, 8, 4}
	cfg.Ratios = []int{2}
	cfg.Steps = 2
	cfg.MaxBoxCells = 256
	cfg.NomMaxBoxCells = 256
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := tinyCfg()
	bad.ActBase = [3]int{2, 8, 4}
	if err := bad.validate(); err == nil {
		t.Error("tiny base accepted")
	}
	bad = tinyCfg()
	bad.Ratios = []int{1}
	if err := bad.validate(); err == nil {
		t.Error("ratio 1 accepted")
	}
	bad = tinyCfg()
	bad.CFL = 2
	if err := bad.validate(); err == nil {
		t.Error("CFL 2 accepted")
	}
}

func TestPrimConservedRoundTrip(t *testing.T) {
	q := conserved(1.3, 0.5, -0.2, 0.1, 2.5, 0.4)
	pr := toPrim(q[:])
	if math.Abs(pr.rho-1.3) > 1e-12 || math.Abs(pr.u-0.5) > 1e-12 ||
		math.Abs(pr.p-2.5) > 1e-12 || math.Abs(pr.y-0.4) > 1e-12 {
		t.Errorf("round trip lost state: %+v", pr)
	}
	if pr.c <= 0 {
		t.Error("nonpositive sound speed")
	}
}

func TestGammaOfMixing(t *testing.T) {
	if gammaOf(0) != GammaAir || gammaOf(1) != GammaHe {
		t.Error("pure-species gamma wrong")
	}
	if g := gammaOf(0.5); g <= GammaAir || g >= GammaHe {
		t.Errorf("mixed gamma %g outside bounds", g)
	}
	if gammaOf(-3) != GammaAir || gammaOf(7) != GammaHe {
		t.Error("gamma not clamped")
	}
}

func TestHLLConsistency(t *testing.T) {
	// For identical left/right states the HLL flux equals the exact flux.
	q := conserved(1.2, 0.3, -0.1, 0.2, 1.7, 0.25)
	var fh, fe [NFields]float64
	for d := 0; d < 3; d++ {
		hllFlux(q[:], q[:], d, fh[:])
		flux(q[:], d, fe[:])
		for f := 0; f < NFields; f++ {
			if math.Abs(fh[f]-fe[f]) > 1e-12 {
				t.Errorf("dim %d field %d: HLL %g, exact %g", d, f, fh[f], fe[f])
			}
		}
	}
}

func TestRankineHugoniotNumbers(t *testing.T) {
	// The precomputed Mach 1.25 post-shock state.
	if math.Abs(postRho-1.4286) > 0.01 {
		t.Errorf("post-shock density %g, want ≈1.429", postRho)
	}
	if math.Abs(postP-1.6563) > 0.01 {
		t.Errorf("post-shock pressure %g, want ≈1.656", postP)
	}
	if postU <= 0 {
		t.Errorf("post-shock velocity %g, want positive", postU)
	}
}

func TestPatchPackUnpackRoundTrip(t *testing.T) {
	b := amr.NewBox([3]int{2, 1, 0}, [3]int{6, 4, 3})
	p := NewPatch(b)
	p.Fill(func(i, j, k int) [NFields]float64 {
		var q [NFields]float64
		for f := 0; f < NFields; f++ {
			q[f] = float64(f*1000 + i*100 + j*10 + k)
		}
		return q
	})
	region := b
	data := p.PackRegion(region)
	q := NewPatch(b)
	q.UnpackRegion(region, data)
	for f := 0; f < NFields; f++ {
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					if p.At(f, i, j, k) != q.At(f, i, j, k) {
						t.Fatalf("mismatch at %d,%d,%d,%d", f, i, j, k)
					}
				}
			}
		}
	}
}

func TestHierarchyRefinesShockAndBubble(t *testing.T) {
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Bassi, Procs: 2}, func(r *simmpi.Rank) {
		st, err := NewState(r, tinyCfg())
		if err != nil {
			panic(err)
		}
		if st.Levels() < 2 {
			t.Errorf("no refinement level created")
			return
		}
		if st.LevelBoxes(1) == 0 {
			t.Error("refinement level has no boxes")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMassConservedWithReflectingWalls(t *testing.T) {
	// With solid walls nothing leaves the domain: the base-level mass
	// integral (fine data averaged down) must be conserved to the
	// accuracy of the unrefluxed coarse-fine coupling.
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: 2}, func(r *simmpi.Rank) {
		cfg := tinyCfg()
		cfg.BC = Reflect
		cfg.Steps = 3
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		m0 := st.GlobalTotals()[QRho]
		for i := 0; i < cfg.Steps; i++ {
			st.Step()
		}
		m1 := st.GlobalTotals()[QRho]
		if rel := math.Abs(m1-m0) / m0; rel > 0.02 {
			t.Errorf("mass drifted %.3g%% (from %g to %g)", rel*100, m0, m1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleLevelMassExactlyConserved(t *testing.T) {
	// Without refinement and with walls, the finite-volume update is
	// exactly conservative.
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: 2}, func(r *simmpi.Rank) {
		cfg := tinyCfg()
		cfg.Ratios = nil
		cfg.BC = Reflect
		cfg.Steps = 4
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		m0 := st.GlobalTotals()[QRho]
		for i := 0; i < cfg.Steps; i++ {
			st.Step()
		}
		m1 := st.GlobalTotals()[QRho]
		if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
			t.Errorf("single-level mass drifted by %.3g", rel)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShockPropagatesRight(t *testing.T) {
	// The density jump must move in +x over time.
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Bassi, Procs: 1}, func(r *simmpi.Rank) {
		cfg := tinyCfg()
		cfg.Ratios = nil
		cfg.Steps = 8
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		shockPos := func() int {
			for i := 0; i < cfg.ActBase[0]; i++ {
				if st.ProbeDensity(i, cfg.ActBase[1]/2, cfg.ActBase[2]/2) < 1.2 {
					return i
				}
			}
			return cfg.ActBase[0]
		}
		x0 := shockPos()
		for i := 0; i < cfg.Steps; i++ {
			st.Step()
		}
		x1 := shockPos()
		if x1 <= x0 {
			t.Errorf("shock did not advance: %d → %d", x0, x1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSerial checks the full AMR exchange machinery:
// identical hierarchies and probe values on 1 and 4 ranks.
func TestParallelMatchesSerial(t *testing.T) {
	probe := func(p int) float64 {
		var v float64
		_, err := simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: p}, func(r *simmpi.Rank) {
			cfg := tinyCfg()
			cfg.Steps = 2
			st, err := NewState(r, cfg)
			if err != nil {
				panic(err)
			}
			for i := 0; i < cfg.Steps; i++ {
				st.Step()
			}
			local := st.ProbeDensity(10, 4, 2)
			// Exactly one rank owns the probe cell; share it.
			sum := r.AllreduceScalar(r.World(), local, simmpi.OpSum)
			if r.ID() == 0 {
				v = sum
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	s, par := probe(1), probe(4)
	if s == 0 || par == 0 {
		t.Fatal("probe not found")
	}
	if s != par {
		t.Errorf("serial density %.17g != 4-rank %.17g", s, par)
	}
}

func TestLowEfficiencyBand(t *testing.T) {
	// Figure 7b: all platforms sit at a few percent of peak; Phoenix
	// under 1%.
	pct := func(m machine.Spec) float64 {
		cfg := tinyCfg()
		rep, err := Run(context.Background(), simmpi.Config{Machine: m, Procs: 4}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.PercentOfPeak(m.PeakGFs)
	}
	if got := pct(machine.Jacquard); got < 1 || got > 12 {
		t.Errorf("Jacquard %%peak %.2f outside the AMR band", got)
	}
	if got := pct(machine.Phoenix); got > 2 {
		t.Errorf("Phoenix %%peak %.2f, paper reports 0.8%%", got)
	}
}

func TestOptimizationAblations(t *testing.T) {
	// §8.1: hashed intersection and pointer knapsack must not be slower
	// than the originals, and on Phoenix the difference must be large.
	wall := func(m machine.Spec, naive, copying bool) float64 {
		cfg := tinyCfg()
		cfg.NomBase = [3]int{2048, 64, 32} // large nominal → many boxes
		cfg.NomMaxBoxCells = 32 * 32 * 32 / 16
		cfg.NaiveIntersect = naive
		cfg.CopyingKnapsack = copying
		rep, err := Run(context.Background(), simmpi.Config{Machine: m, Procs: 4}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	optim := wall(machine.Phoenix, false, false)
	orig := wall(machine.Phoenix, true, true)
	if orig <= optim {
		t.Errorf("original knapsack+regrid (%g) not slower than optimised (%g)", orig, optim)
	}
	if ratio := orig / optim; ratio < 1.2 {
		t.Errorf("X1E optimisation gain %.2fx too small for the §8.1 story", ratio)
	}
}

func TestManyCommunicatingPartners(t *testing.T) {
	// Figure 1f: AMR gives each processor "a surprisingly large number of
	// communicating partners" — more than the 6 of a stencil code.
	// Verified via per-rank message counting at modest P.
	rep, err := Run(context.Background(), simmpi.Config{Machine: machine.Jaguar, Procs: 8}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages == 0 {
		t.Fatal("no point-to-point traffic recorded")
	}
}

// TestTrajectoryReplayBitIdentical pins the trajectory cache's hard
// contract: a metadata-only replay at a (config, nprocs) point produces
// exactly the Report a full-physics run produces. A run on Bassi records
// the trajectory; the Jaguar run then replays it; resetting the cache
// and re-running Jaguar full-physics must match the replayed Report in
// every field.
func TestTrajectoryReplayBitIdentical(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Steps = 3
	run := func(spec machine.Spec) *simmpi.Report {
		rep, err := Run(context.Background(), simmpi.Config{Machine: spec, Procs: 8}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ResetTrajectoryCache()
	run(machine.Bassi)              // records
	replayed := run(machine.Jaguar) // replays
	ResetTrajectoryCache()
	fresh := run(machine.Jaguar) // records from scratch
	if replayed.Wall != fresh.Wall ||
		replayed.TotalFlops != fresh.TotalFlops ||
		replayed.CommFrac != fresh.CommFrac ||
		replayed.MaxCommFrac != fresh.MaxCommFrac ||
		replayed.BytesSent != fresh.BytesSent ||
		replayed.Messages != fresh.Messages ||
		replayed.LoadImbalance != fresh.LoadImbalance {
		t.Fatalf("replayed report diverges from full run:\nreplay: %+v\nfresh:  %+v", replayed, fresh)
	}
	if len(replayed.Phases) != len(fresh.Phases) {
		t.Fatalf("phase sets differ: %v vs %v", replayed.Phases, fresh.Phases)
	}
	for name, v := range fresh.Phases {
		if replayed.Phases[name] != v {
			t.Fatalf("phase %q: replay %v, fresh %v", name, replayed.Phases[name], v)
		}
	}
}
