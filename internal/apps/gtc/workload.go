package gtc

import (
	"context"
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/topology"
)

// workload adapts GTC to the apps.Workload registry.
type workload struct{}

func init() { apps.Register(workload{}) }

func (workload) Name() string    { return "GTC" }
func (workload) Meta() apps.Meta { return Meta }

// DefaultConfig is the paper's Figure 2 weak-scaling point: the
// per-machine defaults (10 particles/cell on BG/L, 100 elsewhere) with
// the computed-on particle count bounded by ScaledParticles.
func (workload) DefaultConfig(spec machine.Spec, procs int) any {
	cfg := DefaultConfig(spec, procs)
	cfg.ActualParticlesPerRank = ScaledParticles(procs)
	return cfg
}

func (workload) Run(ctx context.Context, sim simmpi.Config, cfg any) (*simmpi.Report, error) {
	return Run(ctx, sim, cfg.(Config))
}

// PreferredMapping implements apps.Mapper: on BG/L-family machines GTC
// runs under the §3.1 explicit mapping file that aligns the toroidal
// ring with the torus network.
func (workload) PreferredMapping(spec machine.Spec, procs int, cfg any) (topology.Mapping, bool) {
	if !spec.IsBGL() {
		return nil, false
	}
	m, err := AlignedBGLMapping(spec, procs, cfg.(Config).Domains)
	if err != nil {
		return nil, false
	}
	return m, true
}

// TopoConfig implements apps.TopoConfigurer: two short steps with a small
// particle load expose the Figure 1a ring without a long run.
func (w workload) TopoConfig(spec machine.Spec, procs int) any {
	cfg := w.DefaultConfig(spec, procs).(Config)
	cfg.ActualParticlesPerRank = 400
	cfg.Steps = 2
	return cfg
}

// ScaledParticles bounds the computed-on particle count so host time
// stays sane at extreme concurrency.
func ScaledParticles(procs int) int {
	n := 3_000_000 / procs
	if n > 1500 {
		n = 1500
	}
	if n < 200 {
		n = 200
	}
	return n
}

// Studies implements apps.Studier with the paper's two GTC ablations:
// the §3.1 BG/L optimisation ladder and the virtual-node-mode study.
func (workload) Studies(quick bool) []apps.Study {
	return []apps.Study{optLadderStudy(quick), virtualNodeStudy(quick)}
}

// optLadderStudy reproduces the §3.1 BG/L optimisation ladder: stock GNU
// libm with the original loops, MASS/MASSV math libraries (~30%), the
// combined library+loop optimisations (~60%), and the explicit
// torus-aligned processor mapping (~30% on top, at scale).
func optLadderStudy(quick bool) apps.Study {
	procs := 512
	if quick {
		procs = 128
	}
	const domains = 16
	cfg := DefaultConfig(machine.BGW, procs)
	cfg.Domains = domains
	cfg.ActualParticlesPerRank = 500
	cfg.Steps = 2

	type variant struct {
		label   string
		lib     machine.MathLib
		loops   bool
		aligned bool
	}
	variants := []variant{
		{"original (GNU libm, aint(), default map)", machine.LibmDefault, false, false},
		{"+ MASS/MASSV math libraries", machine.VendorVector, false, false},
		{"+ loop unrolling, real(int(x))", machine.VendorVector, true, false},
		{"+ torus-aligned processor mapping", machine.VendorVector, true, true},
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	return apps.Study{
		ID:      "gtcopt",
		Title:   "GTC optimisations on BG/L (§3.1)",
		Machine: machine.BGW,
		Procs:   procs,
		Labels:  labels,
		Wall: func(ctx context.Context, i int) (float64, error) {
			v := variants[i]
			c := cfg
			c.MathLib = v.lib
			c.OptimizedLoops = v.loops
			sim := simmpi.Config{Machine: machine.BGW, Procs: procs}
			if v.aligned {
				m, err := AlignedBGLMapping(machine.BGW, procs, domains)
				if err != nil {
					return 0, err
				}
				sim.Mapping = m
			}
			rep, err := Run(ctx, sim, c)
			if err != nil {
				return 0, err
			}
			return rep.Wall, nil
		},
	}
}

// virtualNodeStudy reproduces the §3.1 observation that GTC keeps >95%
// per-core efficiency in virtual node mode.
func virtualNodeStudy(quick bool) apps.Study {
	procs := 256
	if quick {
		procs = 64
	}
	cfg := DefaultConfig(machine.BGL, procs)
	cfg.ActualParticlesPerRank = 500
	specs := []machine.Spec{machine.BGL, machine.BGL.WithMode(machine.VirtualNode)}
	return apps.Study{
		ID:      "vnode",
		Title:   "GTC BG/L virtual-node-mode study (§3.1)",
		Machine: machine.BGL,
		Procs:   procs,
		Labels: []string{
			"coprocessor mode (1 compute core/node)",
			"virtual node mode (2 compute cores/node)",
		},
		Wall: func(ctx context.Context, i int) (float64, error) {
			rep, err := Run(ctx, simmpi.Config{Machine: specs[i], Procs: procs}, cfg)
			if err != nil {
				return 0, err
			}
			return rep.Wall, nil
		},
	}
}
