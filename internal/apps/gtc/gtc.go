// Package gtc reproduces GTC, the gyrokinetic toroidal particle-in-cell
// magnetic-fusion code of the paper's §3: charge deposition (scatter), a
// Poisson solve on each poloidal plane, field gather, particle push, and
// the toroidal particle shift.
//
// Parallelisation matches the original's two-level scheme: a 1D domain
// decomposition in the toroidal direction (the fixed number of poloidal
// planes prescribed by the fusion device), and a particle decomposition
// within each domain. Ranks sharing a domain hold a copy of the plane
// grid and allreduce their charge contributions over a domain
// communicator; a ring of point-to-point shifts moves particles between
// adjacent toroidal domains (Figure 1a).
//
// The paper's experiment is weak scaling with 100 particles per cell per
// processor (10 on BG/L), plus three BG/L optimisation studies (§3.1):
// MASS/MASSV math libraries, loop restructuring, and an explicit
// processor mapping aligning the toroidal ring with the torus network.
package gtc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/simmpi"
	"repro/internal/topology"
)

// Meta is the Table 2 row for GTC.
var Meta = apps.Meta{
	Name:       "GTC",
	Lines:      5000,
	Discipline: "Magnetic Fusion",
	Methods:    "Particle in Cell, Vlasov-Poisson",
	Structure:  "Particle/Grid",
	Scaling:    "weak",
}

// Nominal problem constants (paper-scale).
const (
	// NominalDomains is the fixed number of toroidal domains (poloidal
	// planes) prescribed by the simulated device.
	NominalDomains = 64
	// NominalPlaneCells is the nominal poloidal-plane grid size (mgrid).
	NominalPlaneCells = 150000
	// ParticlesPerCell is the per-processor particle load of the paper's
	// weak-scaling study (100; 10 on BG/L for memory reasons).
	ParticlesPerCell = 100
	// BGLParticlesPerCell is the reduced BG/L load.
	BGLParticlesPerCell = 10
)

// Per-phase nominal flop counts per particle per step.
const (
	scatterFlops = 40
	gatherFlops  = 50
	pushFlops    = 90
	// poissonFlopsPerCellIter is the per-cell per-iteration Poisson cost.
	poissonFlopsPerCellIter = 10
	poissonIters            = 5
)

// Kernels. RandomFrac carries the gather/scatter latency sensitivity
// ("a large number of random accesses to memory, making the code
// sensitive to memory access latency", §3.1); the Opteron's low memory
// latency is why Jaguar/Jacquard sustain the highest superscalar
// percentage of peak.
var (
	// ScatterKernel: charge deposition, random writes.
	ScatterKernel = perfmodel.Kernel{
		Name: "gtc-scatter", CPUFrac: 0.40, BytesPerFlop: 0.6,
		RandomFrac: 0.055, VectorFrac: 0.995,
	}
	// GatherKernel: field interpolation, random reads.
	GatherKernel = perfmodel.Kernel{
		Name: "gtc-gather", CPUFrac: 0.42, BytesPerFlop: 0.55,
		RandomFrac: 0.05, VectorFrac: 0.995,
	}
	// PushKernel: particle advance with gyro-phase trigonometry — the
	// phase that benefits from MASS/MASSV (§3.1).
	PushKernel = perfmodel.Kernel{
		Name: "gtc-push", CPUFrac: 0.50, BytesPerFlop: 0.7,
		RandomFrac: 0.008, VectorFrac: 0.995, MathPerFlop: 0.03,
	}
	// PoissonKernel: the iterative plane solve.
	PoissonKernel = perfmodel.Kernel{
		Name: "gtc-poisson", CPUFrac: 0.40, BytesPerFlop: 1.3, VectorFrac: 0.98,
	}
)

// Config describes one GTC run.
type Config struct {
	// Domains is the number of toroidal domains (defaults to
	// min(NominalDomains, procs); must divide procs).
	Domains int
	// NomPlaneCells and NomParticlesPerRank define the charged
	// paper-scale problem.
	NomPlaneCells       int
	NomParticlesPerRank float64
	// ActualPlaneEdge is the computed-on plane edge (plane is edge²).
	ActualPlaneEdge int
	// ActualParticlesPerRank is the computed-on particle count.
	ActualParticlesPerRank int
	// Steps is the number of PIC time steps.
	Steps int
	// MathLib selects the math library build (§3.1 ablation).
	MathLib machine.MathLib
	// OptimizedLoops applies the §3.1 loop unrolling and
	// real(int(x))-for-aint(x) rewrites (raises sustained issue rate).
	OptimizedLoops bool
	// Seed makes particle initialisation deterministic.
	Seed int64
}

// DefaultConfig is the paper's Figure 2 weak-scaling point for a machine.
func DefaultConfig(spec machine.Spec, procs int) Config {
	ppc := float64(ParticlesPerCell)
	if spec.IsBGL() {
		ppc = BGLParticlesPerCell
	}
	return Config{
		Domains:                defaultDomains(procs),
		NomPlaneCells:          NominalPlaneCells,
		NomParticlesPerRank:    ppc * NominalPlaneCells,
		ActualPlaneEdge:        16,
		ActualParticlesPerRank: 1500,
		Steps:                  3,
		MathLib:                machine.VendorVector,
		OptimizedLoops:         true,
		Seed:                   12345,
	}
}

func defaultDomains(procs int) int {
	d := NominalDomains
	if procs < d {
		d = procs
	}
	for procs%d != 0 {
		d--
	}
	return d
}

func (c Config) validate(procs int) error {
	switch {
	case c.Domains < 1 || procs%c.Domains != 0:
		return fmt.Errorf("gtc: %d domains do not divide %d procs", c.Domains, procs)
	case c.ActualPlaneEdge < 4:
		return fmt.Errorf("gtc: actual plane edge %d too small", c.ActualPlaneEdge)
	case c.ActualParticlesPerRank < 1:
		return fmt.Errorf("gtc: no particles")
	case c.NomPlaneCells < c.ActualPlaneEdge*c.ActualPlaneEdge:
		return fmt.Errorf("gtc: nominal plane smaller than actual")
	case float64(c.ActualParticlesPerRank) > c.NomParticlesPerRank:
		return fmt.Errorf("gtc: nominal particles below actual")
	case c.Steps < 1:
		return fmt.Errorf("gtc: no steps")
	}
	return nil
}

// Particle is one gyrokinetic marker.
type Particle struct {
	X, Y   float64 // poloidal-plane position in [0,1)
	Zeta   float64 // toroidal angle in [0,1)
	Vx, Vy float64 // perpendicular drift velocity
	Vpar   float64 // parallel velocity (toroidal)
	W      float64 // statistical weight
}

const particleWords = 7

// State is the per-rank PIC state.
type State struct {
	cfg  Config
	r    *simmpi.Rank
	spec machine.Spec

	domain, pidx int // toroidal domain and particle-decomposition index
	ppd          int // ranks per domain
	domainComm   *simmpi.Comm

	parts      []Particle
	rho, phi   []float64 // actual plane grids (edge²)
	phiTmp     []float64
	exF, eyF   []float64 // plane field components
	edge       int
	dt         float64
	zetaLo     float64 // this domain's toroidal interval
	zetaWidth  float64
	kernels    kernels
	nomShift   float64 // expected nominal per-step shift volume (bytes)
	rngState   uint64
	shiftCalls int
}

type kernels struct {
	scatter, gather, push, poisson perfmodel.Kernel
}

// NewState builds the per-rank state, splitting the world into domain
// communicators and loading particles.
func NewState(r *simmpi.Rank, cfg Config) (*State, error) {
	if err := cfg.validate(r.N()); err != nil {
		return nil, err
	}
	ppd := r.N() / cfg.Domains
	s := &State{
		cfg: cfg, r: r, spec: r.Machine(),
		domain: r.ID() / ppd, pidx: r.ID() % ppd, ppd: ppd,
		edge:     cfg.ActualPlaneEdge,
		rngState: uint64(cfg.Seed)*2654435761 + uint64(r.ID())*40503 + 1,
	}
	s.kernels = kernels{
		scatter: tune(ScatterKernel, cfg),
		gather:  tune(GatherKernel, cfg),
		push:    tune(PushKernel, cfg),
		poisson: tune(PoissonKernel, cfg),
	}
	s.domainComm = r.Split(r.World(), s.domain, s.pidx)
	n := s.edge * s.edge
	s.rho = make([]float64, n)
	s.phi = make([]float64, n)
	s.phiTmp = make([]float64, n)
	s.exF = make([]float64, n)
	s.eyF = make([]float64, n)
	s.zetaWidth = 1.0 / float64(cfg.Domains)
	s.zetaLo = float64(s.domain) * s.zetaWidth
	// Time step: bounded so no particle crosses more than one domain.
	s.dt = 0.4 * s.zetaWidth
	s.parts = make([]Particle, cfg.ActualParticlesPerRank)
	for i := range s.parts {
		s.parts[i] = Particle{
			X:    s.uniform(),
			Y:    s.uniform(),
			Zeta: s.zetaLo + s.uniform()*s.zetaWidth,
			Vx:   0.1 * s.gaussian(),
			Vy:   0.1 * s.gaussian(),
			Vpar: s.gaussian(), // in domain-widths per unit time
			W:    1,
		}
	}
	// Nominal shift volume: roughly a tenth of the particles cross a
	// domain boundary per step, as in production GTC runs.
	s.nomShift = 0.1 * cfg.NomParticlesPerRank * particleWords * 8
	return s, nil
}

// tune applies the configuration's optimisation switches to a kernel.
func tune(k perfmodel.Kernel, cfg Config) perfmodel.Kernel {
	k = k.WithMathLib(cfg.MathLib)
	if !cfg.OptimizedLoops {
		// §3.1: the original build (aint() calls, no unrolling) sustains
		// a lower issue rate.
		k.CPUFrac *= 0.82
	}
	return k
}

// Cheap deterministic xorshift RNG (stdlib-only, reproducible per rank).
func (s *State) next() uint64 {
	s.rngState ^= s.rngState << 13
	s.rngState ^= s.rngState >> 7
	s.rngState ^= s.rngState << 17
	return s.rngState
}

func (s *State) uniform() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

func (s *State) gaussian() float64 {
	// Box-Muller from two uniforms.
	u1 := s.uniform()
	u2 := s.uniform()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// cic computes cloud-in-cell corners and weights for a plane position.
func (s *State) cic(x, y float64) (i0, j0, i1, j1 int, w00, w01, w10, w11 float64) {
	e := float64(s.edge)
	fx, fy := x*e, y*e
	i0 = int(fx) % s.edge
	j0 = int(fy) % s.edge
	dx, dy := fx-math.Floor(fx), fy-math.Floor(fy)
	i1 = (i0 + 1) % s.edge
	j1 = (j0 + 1) % s.edge
	w00 = (1 - dx) * (1 - dy)
	w01 = (1 - dx) * dy
	w10 = dx * (1 - dy)
	w11 = dx * dy
	return
}

// Scatter deposits particle charge onto this rank's plane copy, then
// allreduces over the domain communicator so every copy holds the
// domain's full charge.
func (s *State) Scatter() {
	t0 := s.r.Now()
	for i := range s.rho {
		s.rho[i] = 0
	}
	for _, p := range s.parts {
		i0, j0, i1, j1, w00, w01, w10, w11 := s.cic(p.X, p.Y)
		s.rho[j0*s.edge+i0] += p.W * w00
		s.rho[j1*s.edge+i0] += p.W * w01
		s.rho[j0*s.edge+i1] += p.W * w10
		s.rho[j1*s.edge+i1] += p.W * w11
	}
	s.r.Compute(s.kernels.scatter, s.cfg.NomParticlesPerRank*scatterFlops)
	s.r.AddPhase("scatter", s.r.Now()-t0)

	t1 := s.r.Now()
	if s.ppd > 1 {
		sum := s.r.AllreduceNominal(s.domainComm, s.rho, simmpi.OpSum,
			float64(s.cfg.NomPlaneCells)*8)
		copy(s.rho, sum)
	}
	s.r.AddPhase("allreduce", s.r.Now()-t1)
}

// Solve runs the poloidal-plane Poisson solve (Jacobi iterations on this
// rank's copy, exactly as GTC solves redundantly per processor) and
// differentiates the potential into the plane field.
func (s *State) Solve() {
	t0 := s.r.Now()
	n := s.edge
	h2 := 1.0 / float64(n*n)
	mean := 0.0
	for _, v := range s.rho {
		mean += v
	}
	mean /= float64(len(s.rho))
	for iter := 0; iter < poissonIters; iter++ {
		for j := 0; j < n; j++ {
			jm, jp := (j+n-1)%n, (j+1)%n
			for i := 0; i < n; i++ {
				im, ip := (i+n-1)%n, (i+1)%n
				s.phiTmp[j*n+i] = 0.25 * (s.phi[j*n+im] + s.phi[j*n+ip] +
					s.phi[jm*n+i] + s.phi[jp*n+i] + h2*(s.rho[j*n+i]-mean))
			}
		}
		s.phi, s.phiTmp = s.phiTmp, s.phi
	}
	half := float64(n) / 2
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			im, ip := (i+n-1)%n, (i+1)%n
			jm, jp := (j+n-1)%n, (j+1)%n
			s.exF[j*n+i] = -(s.phi[j*n+ip] - s.phi[j*n+im]) * half
			s.eyF[j*n+i] = -(s.phi[jp*n+i] - s.phi[jm*n+i]) * half
		}
	}
	s.r.Compute(s.kernels.poisson,
		float64(s.cfg.NomPlaneCells)*poissonFlopsPerCellIter*(poissonIters+1))
	s.r.AddPhase("solve", s.r.Now()-t0)
}

// GatherPush interpolates the field to each particle and advances it: the
// perpendicular drift responds to E with a gyro-phase rotation (the
// sin/cos of the §3.1 math-library story), and the parallel velocity
// advects the particle toroidally.
func (s *State) GatherPush() {
	t0 := s.r.Now()
	dt := s.dt
	for idx := range s.parts {
		p := &s.parts[idx]
		i0, j0, i1, j1, w00, w01, w10, w11 := s.cic(p.X, p.Y)
		ex := w00*s.exF[j0*s.edge+i0] + w01*s.exF[j1*s.edge+i0] +
			w10*s.exF[j0*s.edge+i1] + w11*s.exF[j1*s.edge+i1]
		ey := w00*s.eyF[j0*s.edge+i0] + w01*s.eyF[j1*s.edge+i0] +
			w10*s.eyF[j0*s.edge+i1] + w11*s.eyF[j1*s.edge+i1]
		// Gyro rotation plus E acceleration.
		angle := 0.2 * dt
		c, sn := math.Cos(angle), math.Sin(angle)
		vx := c*p.Vx - sn*p.Vy + ex*dt
		vy := sn*p.Vx + c*p.Vy + ey*dt
		p.Vx, p.Vy = vx, vy
		p.X = wrap(p.X + vx*dt)
		p.Y = wrap(p.Y + vy*dt)
		p.Zeta = wrap(p.Zeta + p.Vpar*s.zetaWidth*dt)
	}
	s.r.Compute(s.kernels.gather, s.cfg.NomParticlesPerRank*gatherFlops)
	s.r.Compute(s.kernels.push, s.cfg.NomParticlesPerRank*pushFlops)
	s.r.AddPhase("push", s.r.Now()-t0)
}

func wrap(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

// inDomain reports whether a toroidal angle belongs to this rank's domain.
func (s *State) inDomain(zeta float64) bool {
	d := int(zeta * float64(s.cfg.Domains))
	if d >= s.cfg.Domains {
		d = s.cfg.Domains - 1
	}
	return d == s.domain
}

// ringRank returns the world rank holding the same particle index in the
// toroidal domain offset by dir.
func (s *State) ringRank(dir int) int {
	d := (s.domain + dir + s.cfg.Domains) % s.cfg.Domains
	return d*s.ppd + s.pidx
}

// Shift exchanges particles that left the domain with the ring
// neighbours, in both toroidal directions (the dominant point-to-point
// pattern of Figure 1a).
func (s *State) Shift() {
	t0 := s.r.Now()
	var stay, right, left []Particle
	for _, p := range s.parts {
		switch {
		case s.inDomain(p.Zeta):
			stay = append(stay, p)
		case forwardDistance(s.domain, int(p.Zeta*float64(s.cfg.Domains)), s.cfg.Domains):
			right = append(right, p)
		default:
			left = append(left, p)
		}
	}
	s.shiftCalls++
	tagR := 1000 + 2*s.shiftCalls
	tagL := tagR + 1
	if s.cfg.Domains > 1 {
		fromLeft := s.r.SendrecvNominal(s.ringRank(+1), tagR, packParticles(right),
			s.ringRank(-1), tagR, s.nomShift/2)
		fromRight := s.r.SendrecvNominal(s.ringRank(-1), tagL, packParticles(left),
			s.ringRank(+1), tagL, s.nomShift/2)
		stay = append(stay, unpackParticles(fromLeft)...)
		stay = append(stay, unpackParticles(fromRight)...)
	}
	s.parts = stay
	s.r.AddPhase("shift", s.r.Now()-t0)
}

// forwardDistance reports whether moving from domain a to b is shorter
// going forward around the ring.
func forwardDistance(a, b, n int) bool {
	fwd := ((b - a) + n) % n
	return fwd <= n/2
}

func packParticles(ps []Particle) []float64 {
	out := make([]float64, 0, len(ps)*particleWords)
	for _, p := range ps {
		out = append(out, p.X, p.Y, p.Zeta, p.Vx, p.Vy, p.Vpar, p.W)
	}
	return out
}

func unpackParticles(data []float64) []Particle {
	n := len(data) / particleWords
	out := make([]Particle, n)
	for i := 0; i < n; i++ {
		b := data[i*particleWords:]
		out[i] = Particle{X: b[0], Y: b[1], Zeta: b[2], Vx: b[3], Vy: b[4], Vpar: b[5], W: b[6]}
	}
	return out
}

// Step advances one full PIC cycle.
func (s *State) Step() {
	s.Scatter()
	s.Solve()
	s.GatherPush()
	s.Shift()
}

// NumParticles returns the rank-local particle count.
func (s *State) NumParticles() int { return len(s.parts) }

// TotalCharge returns the rank-local plane charge (after Scatter it holds
// the whole domain's deposit when ppd ranks share the domain).
func (s *State) TotalCharge() float64 {
	var t float64
	for _, v := range s.rho {
		t += v
	}
	return t
}

// Domain returns the rank's toroidal domain index.
func (s *State) Domain() int { return s.domain }

// InDomainCount returns how many local particles are inside the rank's
// own toroidal domain.
func (s *State) InDomainCount() int {
	n := 0
	for _, p := range s.parts {
		if s.inDomain(p.Zeta) {
			n++
		}
	}
	return n
}

// Run executes the GTC benchmark under the given simulation config.
func Run(ctx context.Context, sim simmpi.Config, cfg Config) (*simmpi.Report, error) {
	return simmpi.RunContext(ctx, sim, func(r *simmpi.Rank) {
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < cfg.Steps; i++ {
			st.Step()
		}
		// Global diagnostic, as the production code's field energy output.
		r.AllreduceScalar(r.World(), st.TotalCharge(), simmpi.OpSum)
	})
}

// AlignedBGLMapping builds the §3.1 explicit mapping file for a BG/L-class
// machine: each toroidal domain occupies one X-Y plane slab of the torus
// so ring traffic moves exactly one Z hop.
func AlignedBGLMapping(spec machine.Spec, procs, domains int) (topology.Mapping, error) {
	if spec.Topology != machine.Torus3D {
		return nil, fmt.Errorf("gtc: %s is not a torus machine", spec.Name)
	}
	nodes := (procs + spec.ProcsPerNode - 1) / spec.ProcsPerNode
	tor := topology.NewTorus3D(nodes)
	m, err := topology.AlignRingToTorus(tor, domains, procs/domains, spec.ProcsPerNode)
	if err != nil {
		return nil, err
	}
	return m, nil
}
