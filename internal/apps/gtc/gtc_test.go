package gtc

import (
	"context"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/simmpi"
)

func smallCfg(procs int) Config {
	cfg := DefaultConfig(machine.Jaguar, procs)
	cfg.ActualParticlesPerRank = 400
	cfg.ActualPlaneEdge = 8
	cfg.Steps = 2
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := smallCfg(8)
	cfg.Domains = 3 // does not divide 8
	if err := cfg.validate(8); err == nil {
		t.Error("indivisible domain count accepted")
	}
	cfg = smallCfg(8)
	cfg.NomParticlesPerRank = 10 // below actual
	if err := cfg.validate(8); err == nil {
		t.Error("nominal below actual accepted")
	}
}

func TestDefaultDomains(t *testing.T) {
	cases := map[int]int{64: 64, 128: 64, 32: 32, 96: 48, 1: 1, 32768: 64}
	for procs, want := range cases {
		if got := defaultDomains(procs); got != want {
			t.Errorf("defaultDomains(%d) = %d, want %d", procs, got, want)
		}
	}
}

func TestBGLUsesReducedParticleLoad(t *testing.T) {
	jag := DefaultConfig(machine.Jaguar, 64)
	bgl := DefaultConfig(machine.BGL, 64)
	if bgl.NomParticlesPerRank*10 != jag.NomParticlesPerRank {
		t.Errorf("BG/L particle load %g, want a tenth of %g",
			bgl.NomParticlesPerRank, jag.NomParticlesPerRank)
	}
}

func TestChargeConservation(t *testing.T) {
	// After Scatter (deposit + domain allreduce), the sum of every
	// domain's plane equals the domain's particle count; globally the
	// deposit equals the total particle count times ranks-per-domain
	// (each rank holds a full copy).
	const procs = 8
	cfg := smallCfg(procs)
	cfg.Domains = 4 // ppd = 2
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Bassi, Procs: procs}, func(r *simmpi.Rank) {
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		st.Scatter()
		got := st.TotalCharge()
		want := float64(2 * cfg.ActualParticlesPerRank) // 2 ranks deposit per domain
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("rank %d: domain charge %g, want %g", r.ID(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParticleCountConservedByShift(t *testing.T) {
	const procs = 8
	cfg := smallCfg(procs)
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: procs}, func(r *simmpi.Rank) {
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 3; i++ {
			st.Step()
		}
		local := float64(st.NumParticles())
		total := r.AllreduceScalar(r.World(), local, simmpi.OpSum)
		if want := float64(procs * cfg.ActualParticlesPerRank); total != want {
			t.Errorf("global particles %g, want %g", total, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShiftDeliversParticlesToOwnDomain(t *testing.T) {
	const procs = 8
	cfg := smallCfg(procs)
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: procs}, func(r *simmpi.Rank) {
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 2; i++ {
			st.Step()
		}
		if got, want := st.InDomainCount(), st.NumParticles(); got != want {
			t.Errorf("rank %d: %d of %d particles in own domain after shift", r.ID(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoissonReducesResidual(t *testing.T) {
	// The plane solve must move φ toward satisfying ∇²φ = −(ρ−mean).
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Bassi, Procs: 1}, func(r *simmpi.Rank) {
		cfg := smallCfg(1)
		st, err := NewState(r, cfg)
		if err != nil {
			panic(err)
		}
		st.Scatter()
		res := func() float64 {
			n := st.edge
			h2 := 1.0 / float64(n*n)
			mean := 0.0
			for _, v := range st.rho {
				mean += v
			}
			mean /= float64(len(st.rho))
			var sum float64
			for j := 0; j < n; j++ {
				jm, jp := (j+n-1)%n, (j+1)%n
				for i := 0; i < n; i++ {
					im, ip := (i+n-1)%n, (i+1)%n
					lap := st.phi[j*n+im] + st.phi[j*n+ip] + st.phi[jm*n+i] + st.phi[jp*n+i] - 4*st.phi[j*n+i]
					d := lap + h2*(st.rho[j*n+i]-mean)
					sum += d * d
				}
			}
			return math.Sqrt(sum)
		}
		r0 := res()
		st.Solve()
		r1 := res()
		if r1 >= r0 {
			t.Errorf("Poisson residual did not decrease: %g → %g", r0, r1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		rep, err := Run(context.Background(), simmpi.Config{Machine: machine.Jaguar, Procs: 8}, smallCfg(8))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic walls: %v vs %v", a, b)
	}
}

func TestOpteronEfficiencyAdvantage(t *testing.T) {
	// §3.1: the Opteron "delivers a significantly higher percentage of
	// peak for GTC compared to all the other superscalar processors", and
	// Bassi achieves about half of Jaguar's percentage of peak.
	pct := func(m machine.Spec) float64 {
		cfg := smallCfg(64)
		rep, err := Run(context.Background(), simmpi.Config{Machine: m, Procs: 64}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.PercentOfPeak(m.PeakGFs)
	}
	jag, bassi, bgl := pct(machine.Jaguar), pct(machine.Bassi), pct(machine.BGL)
	if jag <= bassi || jag <= bgl {
		t.Errorf("Jaguar %%peak %.1f not above Bassi %.1f and BG/L %.1f", jag, bassi, bgl)
	}
	if ratio := bassi / jag; ratio < 0.3 || ratio > 0.75 {
		t.Errorf("Bassi/Jaguar %%peak ratio %.2f, paper says about one half", ratio)
	}
}

func TestPhoenixFastestRaw(t *testing.T) {
	// Figure 2a: Phoenix's Gflops/P is up to ~4.5× the second-best
	// (Jaguar) thanks to the multi-streaming vector optimisations.
	gf := func(m machine.Spec) float64 {
		cfg := smallCfg(64)
		rep, err := Run(context.Background(), simmpi.Config{Machine: m, Procs: 64}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.GflopsPerProc()
	}
	phx, jag := gf(machine.Phoenix), gf(machine.Jaguar)
	if ratio := phx / jag; ratio < 2.5 || ratio > 6 {
		t.Errorf("Phoenix/Jaguar ratio %.2f, paper shows up to ~4.5", ratio)
	}
}

func TestMathLibOptimizationOnBGL(t *testing.T) {
	// §3.1: MASS/MASSV gave ~30%; combined with loop optimisations, ~60%
	// over the original runs.
	wall := func(lib machine.MathLib, loops bool) float64 {
		cfg := smallCfg(32)
		cfg.MathLib = lib
		cfg.OptimizedLoops = loops
		rep, err := Run(context.Background(), simmpi.Config{Machine: machine.BGL, Procs: 32}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	base := wall(machine.LibmDefault, false)
	mass := wall(machine.VendorVector, false)
	full := wall(machine.VendorVector, true)
	libBoost := base / mass
	fullBoost := base / full
	if libBoost < 1.1 || libBoost > 1.6 {
		t.Errorf("MASSV boost %.2fx, paper reports ~1.3x", libBoost)
	}
	if fullBoost < 1.3 || fullBoost > 2.0 {
		t.Errorf("combined boost %.2fx, paper reports ~1.6x", fullBoost)
	}
	if fullBoost <= libBoost {
		t.Error("loop optimisations added nothing")
	}
}

func TestAlignedMappingReducesRingHops(t *testing.T) {
	const procs, domains = 512, 16
	m, err := AlignedBGLMapping(machine.BGW, procs, domains)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(procs)
	cfg.Domains = domains
	cfg.Steps = 2
	runWith := func(mp interface {
		Node(int) int
		Name() string
	}) float64 {
		sim := simmpi.Config{Machine: machine.BGW, Procs: procs}
		if mp != nil {
			sim.Mapping = m
		}
		rep, err := Run(context.Background(), sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	def, aligned := runWith(nil), runWith(m)
	if aligned >= def {
		t.Errorf("aligned mapping (%g) not faster than default (%g)", aligned, def)
	}
}

func TestVirtualNodeModeHighEfficiency(t *testing.T) {
	// §3.1: GTC retains >95% efficiency using the second core (virtual
	// node mode), because it is latency- rather than bandwidth-bound.
	cfg := smallCfg(64)
	co, err := Run(context.Background(), simmpi.Config{Machine: machine.BGL, Procs: 64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vn, err := Run(context.Background(), simmpi.Config{Machine: machine.BGL.WithMode(machine.VirtualNode), Procs: 64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eff := co.Wall / vn.Wall
	if eff < 0.85 {
		t.Errorf("virtual-node per-core efficiency %.2f, paper reports >0.95", eff)
	}
}

func TestWeakScalingRoughlyFlat(t *testing.T) {
	// Figure 2: near-perfect weak scaling on the superscalar machines.
	gf := func(p int) float64 {
		cfg := smallCfg(p)
		rep, err := Run(context.Background(), simmpi.Config{Machine: machine.Jaguar, Procs: p}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.GflopsPerProc()
	}
	g64, g256 := gf(64), gf(256)
	if drop := g256 / g64; drop < 0.9 {
		t.Errorf("weak scaling dropped to %.2f of the 64-proc rate", drop)
	}
}
