package apps

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/topology"
)

// Workload is one of the paper's applications as a first-class, sweepable
// scenario: everything an experiment driver needs to run the app at an
// arbitrary (machine, concurrency) point without knowing its config type.
// The six applications register themselves at init time; importing
// repro/internal/apps/all (blank) populates the registry.
type Workload interface {
	// Name is the registry key and the display name used in figures
	// ("GTC", "Cactus", ...). It may differ from Meta().Name, which
	// follows Table 2's typography.
	Name() string
	// Meta is the application's Table 2 row.
	Meta() Meta
	// DefaultConfig returns the paper's canonical scaling-study
	// configuration for one (machine, concurrency) point, with the
	// computed-on (actual) problem sizes bounded so host time stays sane
	// at extreme concurrency. The result is the app's own Config type;
	// callers that tweak knobs type-assert it, everyone else passes it
	// straight back to Run.
	DefaultConfig(spec machine.Spec, procs int) any
	// Run executes one point under sim with cfg, a value obtained from
	// DefaultConfig (possibly modified). Cancelling ctx aborts the
	// simulation at its next communication operation and returns ctx's
	// error; it never changes the result of a run that completes.
	Run(ctx context.Context, sim simmpi.Config, cfg any) (*simmpi.Report, error)
}

// Mapper is the optional preferred-mapping hook: a workload that benefits
// from an explicit rank placement on some platform (GTC's §3.1
// torus-aligned BG/L mapping) returns it here.
type Mapper interface {
	PreferredMapping(spec machine.Spec, procs int, cfg any) (topology.Mapping, bool)
}

// SpecPreparer is the optional platform-variant hook: a workload whose
// published results came from a different installation of a platform
// substitutes it here (Cactus's Phoenix data are from the Cray X1).
type SpecPreparer interface {
	PrepareSpec(spec machine.Spec) machine.Spec
}

// TopoConfigurer is the optional hook for the Figure 1 communication-
// topology capture: a downsized configuration that still exercises the
// app's full communication pattern.
type TopoConfigurer interface {
	TopoConfig(spec machine.Spec, procs int) any
}

// Study is one optimisation-ablation experiment (§3.1, §8.1): a ladder of
// configurations run at a single (machine, concurrency) point, reported
// as speedups over the first (baseline) variant.
type Study struct {
	// ID is the stable experiment identifier ("gtcopt", "amropt",
	// "vnode") used for CLI dispatch and result-cache keys.
	ID string
	// Title is the rendered table heading.
	Title string
	// Machine and Procs locate the study's single simulation point.
	Machine machine.Spec
	Procs   int
	// Labels name the variants, baseline first.
	Labels []string
	// Wall simulates variant i under ctx and returns its wall-clock
	// seconds.
	Wall func(ctx context.Context, i int) (float64, error)
}

// Studier is the optional interface for workloads that define
// optimisation studies.
type Studier interface {
	Studies(quick bool) []Study
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the registry, panicking on duplicates —
// registration happens at init time, so a duplicate is a programming
// error, not a runtime condition.
func Register(w Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	key := normalize(w.Name())
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("apps: workload %q registered twice", w.Name()))
	}
	registry[key] = w
}

// Workloads returns every registered workload sorted by Name, so registry
// iteration order is deterministic across processes and registration
// orders.
func Workloads() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted display names of the registered workloads.
func Names() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name()
	}
	return names
}

// Lookup finds a workload by forgiving name: case-insensitive, ignoring
// punctuation ("gtc", "GTC", "beam-beam3d" all resolve).
func Lookup(name string) (Workload, error) {
	regMu.RLock()
	w, ok := registry[normalize(name)]
	regMu.RUnlock()
	if ok {
		return w, nil
	}
	return nil, fmt.Errorf("apps: unknown workload %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// normalize folds a name into a registry key, with the same forgiving
// rule the machine selectors use.
func normalize(name string) string { return machine.FoldName(name) }

// RunPoint runs one (workload, machine, concurrency) point through the
// workload's canonical path: the default configuration for the point, the
// platform-variant substitution, and the preferred mapping. The report is
// from the substituted platform; callers that normalise against peak
// should use the spec they asked for, as the paper's figures do.
// Cancelling ctx aborts the point promptly with ctx's error.
func RunPoint(ctx context.Context, w Workload, spec machine.Spec, procs int) (*simmpi.Report, error) {
	cfg := w.DefaultConfig(spec, procs)
	run := spec
	if p, ok := w.(SpecPreparer); ok {
		run = p.PrepareSpec(spec)
	}
	sim := simmpi.Config{Machine: run, Procs: procs}
	if m, ok := w.(Mapper); ok {
		if mp, ok := m.PreferredMapping(run, procs, cfg); ok {
			sim.Mapping = mp
		}
	}
	return w.Run(ctx, sim, cfg)
}

// TopoConfig returns the workload's Figure 1 capture configuration,
// falling back to the canonical default.
func TopoConfig(w Workload, spec machine.Spec, procs int) any {
	if tc, ok := w.(TopoConfigurer); ok {
		return tc.TopoConfig(spec, procs)
	}
	return w.DefaultConfig(spec, procs)
}

// Studies collects the optimisation studies of every registered workload
// in registry order.
func Studies(quick bool) []Study {
	var out []Study
	for _, w := range Workloads() {
		if s, ok := w.(Studier); ok {
			out = append(out, s.Studies(quick)...)
		}
	}
	return out
}

// StudyByID finds one optimisation study across the registry.
func StudyByID(id string, quick bool) (Study, error) {
	for _, s := range Studies(quick) {
		if s.ID == id {
			return s, nil
		}
	}
	return Study{}, fmt.Errorf("apps: unknown study %q", id)
}
