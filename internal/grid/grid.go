// Package grid provides the regular-grid substrate shared by the stencil
// applications (ELBM3D, Cactus): 3D Cartesian block decompositions over a
// process grid, ghost-cell fields, and the 6-face ghost exchange whose
// pattern appears in the paper's Figures 1(b) and 1(c).
package grid

import (
	"fmt"
)

// Factor3 splits p into three near-equal factors px·py·pz = p, preferring
// balanced (minimal-surface) decompositions.
func Factor3(p int) (px, py, pz int) {
	best := [3]int{1, 1, p}
	bestScore := float64(1 + p + p)
	for x := 1; x*x*x <= p; x++ {
		if p%x != 0 {
			continue
		}
		m := p / x
		for y := x; y*y <= m; y++ {
			if m%y != 0 {
				continue
			}
			z := m / y
			score := float64(x*y + y*z + x*z)
			if score < bestScore {
				bestScore = score
				best = [3]int{x, y, z}
			}
		}
	}
	return best[0], best[1], best[2]
}

// Decomp is a 3D block decomposition of an NX×NY×NZ global grid over a
// PX×PY×PZ process grid with periodic boundaries.
type Decomp struct {
	PX, PY, PZ int
	NX, NY, NZ int
}

// NewDecomp builds a near-cubic decomposition of the global grid over p
// processes. Every process dimension must not exceed the grid dimension.
func NewDecomp(p, nx, ny, nz int) (Decomp, error) {
	if p < 1 {
		return Decomp{}, fmt.Errorf("grid: nonpositive process count %d", p)
	}
	px, py, pz := Factor3(p)
	d := Decomp{PX: px, PY: py, PZ: pz, NX: nx, NY: ny, NZ: nz}
	if px > nx || py > ny || pz > nz {
		return Decomp{}, fmt.Errorf("grid: process grid %dx%dx%d exceeds %dx%dx%d cells",
			px, py, pz, nx, ny, nz)
	}
	return d, nil
}

// Procs returns the total process count of the decomposition.
func (d Decomp) Procs() int { return d.PX * d.PY * d.PZ }

// Coords returns the process-grid coordinates of a rank (x fastest).
func (d Decomp) Coords(rank int) (px, py, pz int) {
	px = rank % d.PX
	py = (rank / d.PX) % d.PY
	pz = rank / (d.PX * d.PY)
	return
}

// Rank returns the rank at process-grid coordinates, with periodic wrap.
func (d Decomp) Rank(px, py, pz int) int {
	px = ((px % d.PX) + d.PX) % d.PX
	py = ((py % d.PY) + d.PY) % d.PY
	pz = ((pz % d.PZ) + d.PZ) % d.PZ
	return px + d.PX*(py+d.PY*pz)
}

// Neighbor returns the rank offset by dir (±1) along dim (0=x,1=y,2=z).
func (d Decomp) Neighbor(rank, dim, dir int) int {
	px, py, pz := d.Coords(rank)
	switch dim {
	case 0:
		px += dir
	case 1:
		py += dir
	default:
		pz += dir
	}
	return d.Rank(px, py, pz)
}

// blockRange returns the half-open global index range [lo, hi) owned by
// process coordinate c of pdim processes over n cells.
func blockRange(c, pdim, n int) (lo, hi int) {
	lo = c * n / pdim
	hi = (c + 1) * n / pdim
	return
}

// LocalExtent returns the local interior size of a rank.
func (d Decomp) LocalExtent(rank int) (lx, ly, lz int) {
	px, py, pz := d.Coords(rank)
	x0, x1 := blockRange(px, d.PX, d.NX)
	y0, y1 := blockRange(py, d.PY, d.NY)
	z0, z1 := blockRange(pz, d.PZ, d.NZ)
	return x1 - x0, y1 - y0, z1 - z0
}

// GlobalOrigin returns the global coordinates of a rank's first cell.
func (d Decomp) GlobalOrigin(rank int) (gx, gy, gz int) {
	px, py, pz := d.Coords(rank)
	gx, _ = blockRange(px, d.PX, d.NX)
	gy, _ = blockRange(py, d.PY, d.NY)
	gz, _ = blockRange(pz, d.PZ, d.NZ)
	return
}

// Field is a 3D scalar field with a ghost halo of width G. Interior
// indices run [0, LX)×[0, LY)×[0, LZ); ghosts extend to -G and L+G.
type Field struct {
	LX, LY, LZ int
	G          int
	sx, sy     int // strides
	Data       []float64
}

// NewField allocates a zeroed field with the given interior and halo.
func NewField(lx, ly, lz, g int) *Field {
	ex, ey, ez := lx+2*g, ly+2*g, lz+2*g
	return &Field{
		LX: lx, LY: ly, LZ: lz, G: g,
		sx: 1, sy: ex,
		Data: make([]float64, ex*ey*ez),
	}
}

// Idx converts (possibly ghost) coordinates into a Data offset.
func (f *Field) Idx(i, j, k int) int {
	ex, ey := f.LX+2*f.G, f.LY+2*f.G
	return (i + f.G) + ex*((j+f.G)+ey*(k+f.G))
}

// At reads element (i, j, k).
func (f *Field) At(i, j, k int) float64 { return f.Data[f.Idx(i, j, k)] }

// Set writes element (i, j, k).
func (f *Field) Set(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] = v }

// FillInterior applies fn(i,j,k) to every interior cell.
func (f *Field) FillInterior(fn func(i, j, k int) float64) {
	for k := 0; k < f.LZ; k++ {
		for j := 0; j < f.LY; j++ {
			for i := 0; i < f.LX; i++ {
				f.Set(i, j, k, fn(i, j, k))
			}
		}
	}
}

// extent returns the ghost-inclusive loop bounds for dimensions already
// exchanged, so that edge and corner ghosts fill in after all three
// dimension sweeps.
func sweepBounds(l, g int, includeGhost bool) (lo, hi int) {
	if includeGhost {
		return -g, l + g
	}
	return 0, l
}

// PackFaceX extracts the x-face of thickness G at side dir (-1 sends the
// low face, +1 the high face), ghost-inclusive in y/z per doneY/doneZ.
func (f *Field) PackFaceX(dir int, doneY, doneZ bool) []float64 {
	y0, y1 := sweepBounds(f.LY, f.G, doneY)
	z0, z1 := sweepBounds(f.LZ, f.G, doneZ)
	out := make([]float64, 0, f.G*(y1-y0)*(z1-z0))
	for k := z0; k < z1; k++ {
		for j := y0; j < y1; j++ {
			for g := 0; g < f.G; g++ {
				i := g // low face interior cells
				if dir > 0 {
					i = f.LX - f.G + g
				}
				out = append(out, f.At(i, j, k))
			}
		}
	}
	return out
}

// UnpackGhostX stores a received face into the x ghosts at side dir.
func (f *Field) UnpackGhostX(dir int, doneY, doneZ bool, data []float64) {
	y0, y1 := sweepBounds(f.LY, f.G, doneY)
	z0, z1 := sweepBounds(f.LZ, f.G, doneZ)
	idx := 0
	for k := z0; k < z1; k++ {
		for j := y0; j < y1; j++ {
			for g := 0; g < f.G; g++ {
				i := -f.G + g
				if dir > 0 {
					i = f.LX + g
				}
				f.Set(i, j, k, data[idx])
				idx++
			}
		}
	}
}

// PackFaceY and UnpackGhostY mirror the x versions for dimension y.
func (f *Field) PackFaceY(dir int, doneX, doneZ bool) []float64 {
	x0, x1 := sweepBounds(f.LX, f.G, doneX)
	z0, z1 := sweepBounds(f.LZ, f.G, doneZ)
	out := make([]float64, 0, f.G*(x1-x0)*(z1-z0))
	for k := z0; k < z1; k++ {
		for g := 0; g < f.G; g++ {
			j := g
			if dir > 0 {
				j = f.LY - f.G + g
			}
			for i := x0; i < x1; i++ {
				out = append(out, f.At(i, j, k))
			}
		}
	}
	return out
}

// UnpackGhostY stores a received y-face into ghosts.
func (f *Field) UnpackGhostY(dir int, doneX, doneZ bool, data []float64) {
	x0, x1 := sweepBounds(f.LX, f.G, doneX)
	z0, z1 := sweepBounds(f.LZ, f.G, doneZ)
	idx := 0
	for k := z0; k < z1; k++ {
		for g := 0; g < f.G; g++ {
			j := -f.G + g
			if dir > 0 {
				j = f.LY + g
			}
			for i := x0; i < x1; i++ {
				f.Set(i, j, k, data[idx])
				idx++
			}
		}
	}
}

// PackFaceZ and UnpackGhostZ mirror the x versions for dimension z.
func (f *Field) PackFaceZ(dir int, doneX, doneY bool) []float64 {
	x0, x1 := sweepBounds(f.LX, f.G, doneX)
	y0, y1 := sweepBounds(f.LY, f.G, doneY)
	out := make([]float64, 0, f.G*(x1-x0)*(y1-y0))
	for g := 0; g < f.G; g++ {
		k := g
		if dir > 0 {
			k = f.LZ - f.G + g
		}
		for j := y0; j < y1; j++ {
			for i := x0; i < x1; i++ {
				out = append(out, f.At(i, j, k))
			}
		}
	}
	return out
}

// UnpackGhostZ stores a received z-face into ghosts.
func (f *Field) UnpackGhostZ(dir int, doneX, doneY bool, data []float64) {
	x0, x1 := sweepBounds(f.LX, f.G, doneX)
	y0, y1 := sweepBounds(f.LY, f.G, doneY)
	idx := 0
	for g := 0; g < f.G; g++ {
		k := -f.G + g
		if dir > 0 {
			k = f.LZ + g
		}
		for j := y0; j < y1; j++ {
			for i := x0; i < x1; i++ {
				f.Set(i, j, k, data[idx])
				idx++
			}
		}
	}
}
