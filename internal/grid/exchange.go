package grid

import (
	"repro/internal/simmpi"
)

// Exchanger performs periodic 6-face ghost exchanges of one or more fields
// for a rank of a Cartesian decomposition. Exchanging dimension by
// dimension with ghost-inclusive faces fills edge and corner ghosts too.
type Exchanger struct {
	Decomp Decomp
	Rank   *simmpi.Rank
	// NomScale multiplies actual face bytes to charge the nominal
	// problem's communication volume (1 for full-scale runs).
	NomScale float64

	tag int
}

// nominal converts an actual payload length into charged bytes.
func (e *Exchanger) nominal(n int) float64 {
	s := e.NomScale
	if s <= 0 {
		s = 1
	}
	return float64(n) * 8 * s
}

func (e *Exchanger) nextTag() int {
	e.tag++
	return e.tag
}

// Exchange refreshes all ghost cells of the given fields from the six
// topological neighbours. When the decomposition has a single process
// along a dimension, the exchange reduces to a local periodic copy.
func (e *Exchanger) Exchange(fields ...*Field) {
	rank := e.Rank.ID()
	d := e.Decomp
	for _, f := range fields {
		// X sweep.
		e.sweep(f, 0, d.PX, rank,
			func(dir int) []float64 { return f.PackFaceX(dir, false, false) },
			func(dir int, data []float64) { f.UnpackGhostX(dir, false, false, data) })
		// Y sweep (x ghosts now valid).
		e.sweep(f, 1, d.PY, rank,
			func(dir int) []float64 { return f.PackFaceY(dir, true, false) },
			func(dir int, data []float64) { f.UnpackGhostY(dir, true, false, data) })
		// Z sweep (x and y ghosts now valid).
		e.sweep(f, 2, d.PZ, rank,
			func(dir int) []float64 { return f.PackFaceZ(dir, true, true) },
			func(dir int, data []float64) { f.UnpackGhostZ(dir, true, true, data) })
	}
}

// sweep exchanges both faces of one dimension. Low faces travel to the
// low neighbour (becoming its high ghosts) and vice versa.
func (e *Exchanger) sweep(f *Field, dim, pdim, rank int,
	pack func(dir int) []float64, unpack func(dir int, data []float64)) {

	if pdim == 1 {
		// Periodic self-wrap: my own low face becomes my high ghost.
		low := pack(-1)
		high := pack(+1)
		unpack(+1, low)
		unpack(-1, high)
		return
	}
	lowNbr := e.Decomp.Neighbor(rank, dim, -1)
	highNbr := e.Decomp.Neighbor(rank, dim, +1)

	// Phase 1: send low face down, receive from high neighbour.
	t1 := e.nextTag()
	lowFace := pack(-1)
	fromHigh := e.Rank.SendrecvNominal(lowNbr, t1, lowFace, highNbr, t1, e.nominal(len(lowFace)))
	unpack(+1, fromHigh)

	// Phase 2: send high face up, receive from low neighbour.
	t2 := e.nextTag()
	highFace := pack(+1)
	fromLow := e.Rank.SendrecvNominal(highNbr, t2, highFace, lowNbr, t2, e.nominal(len(highFace)))
	unpack(-1, fromLow)
}
