package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/simmpi"
)

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		8:  {2, 2, 2},
		64: {4, 4, 4},
		12: {2, 2, 3},
	}
	for p, want := range cases {
		x, y, z := Factor3(p)
		if [3]int{x, y, z} != want {
			t.Errorf("Factor3(%d) = %d,%d,%d, want %v", p, x, y, z, want)
		}
	}
	// Property: factors always multiply back to p and are ordered.
	f := func(n uint16) bool {
		p := int(n%512) + 1
		x, y, z := Factor3(p)
		return x*y*z == p && x <= y && y <= z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecompCoordsRankRoundTrip(t *testing.T) {
	d, err := NewDecomp(24, 48, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.Procs(); r++ {
		px, py, pz := d.Coords(r)
		if d.Rank(px, py, pz) != r {
			t.Fatalf("rank %d round trip failed", r)
		}
	}
}

func TestDecompCoversGridExactly(t *testing.T) {
	d, err := NewDecomp(12, 50, 31, 17)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < d.Procs(); r++ {
		lx, ly, lz := d.LocalExtent(r)
		if lx <= 0 || ly <= 0 || lz <= 0 {
			t.Fatalf("rank %d has empty extent", r)
		}
		total += lx * ly * lz
	}
	if want := 50 * 31 * 17; total != want {
		t.Errorf("decomposition covers %d cells, want %d", total, want)
	}
}

func TestDecompRejectsOversubscription(t *testing.T) {
	if _, err := NewDecomp(64, 2, 2, 2); err == nil {
		t.Error("64 procs on 8 cells accepted")
	}
	if _, err := NewDecomp(0, 8, 8, 8); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestNeighborPeriodicity(t *testing.T) {
	d, _ := NewDecomp(27, 27, 27, 27)
	for r := 0; r < 27; r++ {
		for dim := 0; dim < 3; dim++ {
			up := d.Neighbor(r, dim, +1)
			if d.Neighbor(up, dim, -1) != r {
				t.Fatalf("neighbour inverse broken at rank %d dim %d", r, dim)
			}
		}
	}
}

func TestFieldIndexing(t *testing.T) {
	f := NewField(4, 3, 2, 1)
	f.Set(0, 0, 0, 42)
	f.Set(-1, -1, -1, 7)
	f.Set(4, 3, 2, 9) // far ghost corner
	if f.At(0, 0, 0) != 42 || f.At(-1, -1, -1) != 7 || f.At(4, 3, 2) != 9 {
		t.Error("field get/set with ghosts broken")
	}
	if want := 6 * 5 * 4; len(f.Data) != want {
		t.Errorf("field storage %d, want %d", len(f.Data), want)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := NewField(4, 4, 4, 2)
	f.FillInterior(func(i, j, k int) float64 { return float64(100*i + 10*j + k) })
	// Low X face packed then unpacked into high ghosts must land the
	// interior low cells at i = LX..LX+G-1.
	face := f.PackFaceX(-1, false, false)
	if want := 2 * 4 * 4; len(face) != want {
		t.Fatalf("face length %d, want %d", len(face), want)
	}
	f.UnpackGhostX(+1, false, false, face)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for g := 0; g < 2; g++ {
				if f.At(4+g, j, k) != f.At(g, j, k) {
					t.Fatalf("ghost (%d,%d,%d) != interior", 4+g, j, k)
				}
			}
		}
	}
}

// TestExchangeMatchesGlobalPeriodic is the key correctness test: after a
// ghost exchange, every ghost cell must equal the periodic global field.
func TestExchangeMatchesGlobalPeriodic(t *testing.T) {
	const nx, ny, nz, g = 12, 12, 12, 2
	global := func(i, j, k int) float64 {
		i = ((i % nx) + nx) % nx
		j = ((j % ny) + ny) % ny
		k = ((k % nz) + nz) % nz
		return float64(i*10000 + j*100 + k)
	}
	for _, p := range []int{1, 2, 4, 8} {
		d, err := NewDecomp(p, nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		_, err = simmpi.Run(simmpi.Config{Machine: machine.Jaguar, Procs: p}, func(r *simmpi.Rank) {
			lx, ly, lz := d.LocalExtent(r.ID())
			ox, oy, oz := d.GlobalOrigin(r.ID())
			f := NewField(lx, ly, lz, g)
			f.FillInterior(func(i, j, k int) float64 { return global(ox+i, oy+j, oz+k) })
			ex := &Exchanger{Decomp: d, Rank: r, NomScale: 1}
			ex.Exchange(f)
			for k := -g; k < lz+g; k++ {
				for j := -g; j < ly+g; j++ {
					for i := -g; i < lx+g; i++ {
						want := global(ox+i, oy+j, oz+k)
						if got := f.At(i, j, k); got != want {
							t.Errorf("p=%d rank=%d cell (%d,%d,%d) = %g, want %g",
								p, r.ID(), i, j, k, got, want)
							return
						}
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangeChargesNominalScale(t *testing.T) {
	const p = 8
	run := func(scale float64) float64 {
		d, _ := NewDecomp(p, 16, 16, 16)
		rep, err := simmpi.Run(simmpi.Config{Machine: machine.BGL, Procs: p}, func(r *simmpi.Rank) {
			lx, ly, lz := d.LocalExtent(r.ID())
			f := NewField(lx, ly, lz, 1)
			ex := &Exchanger{Decomp: d, Rank: r, NomScale: scale}
			ex.Exchange(f)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	if small, big := run(1), run(1000); big < 5*small {
		t.Errorf("nominal scaling not charged: %g vs %g", small, big)
	}
}

func TestExchangeMultipleFields(t *testing.T) {
	const p = 2
	d, _ := NewDecomp(p, 8, 4, 4)
	_, err := simmpi.Run(simmpi.Config{Machine: machine.Bassi, Procs: p}, func(r *simmpi.Rank) {
		lx, ly, lz := d.LocalExtent(r.ID())
		a := NewField(lx, ly, lz, 1)
		b := NewField(lx, ly, lz, 1)
		a.FillInterior(func(i, j, k int) float64 { return 1 })
		b.FillInterior(func(i, j, k int) float64 { return 2 })
		ex := &Exchanger{Decomp: d, Rank: r, NomScale: 1}
		ex.Exchange(a, b)
		if a.At(-1, 0, 0) != 1 || b.At(-1, 0, 0) != 2 {
			t.Errorf("fields cross-contaminated: %g %g", a.At(-1, 0, 0), b.At(-1, 0, 0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
