package benchtraj

import (
	"fmt"
	"io"
	"strings"
)

// Thresholds define when a new measurement counts as a regression
// rather than noise. Benchmarks are wall-time noisy on shared CI
// hosts, so time comparisons combine a generous fractional bound with
// an absolute floor below which a benchmark is ignored entirely;
// allocation counts are near-deterministic, so they gate tightly.
type Thresholds struct {
	// NsFrac fails a benchmark whose ns/op grew by more than this
	// fraction (0.40 = +40%).
	NsFrac float64
	// MinNs exempts benchmarks whose baseline ns/op is below this
	// floor: micro-entries jitter too much for wall-clock gating.
	MinNs float64
	// AllocFrac fails a benchmark whose allocs/op grew by more than
	// this fraction.
	AllocFrac float64
	// MinAllocs exempts benchmarks allocating fewer than this many
	// objects per op from allocation gating.
	MinAllocs int64
	// SimAllocFrac fails a Sim*-prefixed benchmark whose allocs/op grew
	// by more than this fraction, with no MinAllocs exemption. The
	// simmpi substrate entries are exactly the ones whose allocation
	// counts the pooled core pins down — a world spawn at 3 allocs/op
	// must not silently creep back to 300 under the general floor.
	SimAllocFrac float64
	// HeadlineFrac fails the record when the cold AllFigures wall time
	// grew by more than this fraction.
	HeadlineFrac float64
}

// DefaultThresholds are tuned for shared CI runners: wide enough that
// scheduler jitter passes, tight enough that a real hot-path regression
// (the kind the trajectory exists to catch) fails.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NsFrac:       0.40,
		MinNs:        50_000, // 50µs
		AllocFrac:    0.15,
		MinAllocs:    64,
		SimAllocFrac: 0.20,
		HeadlineFrac: 0.30,
	}
}

// Delta is one benchmark-metric comparison between two records.
type Delta struct {
	// Name is the benchmark ("(headline)" for the cold-AllFigures row).
	Name string `json:"name"`
	// Metric is "ns/op", "allocs/op", or "cold_all_figures_ns".
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Frac is the fractional change ((new-old)/old; +0.25 = 25% slower).
	Frac float64 `json:"frac"`
	// Regressed marks deltas past the thresholds.
	Regressed bool `json:"regressed"`
}

func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%-28s %-12s %14.0f -> %14.0f  %+7.1f%%  %s",
		d.Name, d.Metric, d.Old, d.New, d.Frac*100, verdict)
}

// Compare diffs new against old under the thresholds, returning one
// delta per comparable metric. Benchmarks present in only one record
// are skipped: a renamed or newly added entry is not a regression, and
// a deleted one is caught by review, not by the gate.
func Compare(old, new *Record, th Thresholds) ([]Delta, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("benchtraj: cannot compare schema %d against schema %d",
			new.Schema, old.Schema)
	}
	var out []Delta
	if old.Headline.ColdAllFiguresNs > 0 && new.Headline.ColdAllFiguresNs > 0 {
		d := Delta{
			Name: "(headline)", Metric: "cold_all_figures_ns",
			Old: old.Headline.ColdAllFiguresNs, New: new.Headline.ColdAllFiguresNs,
		}
		d.Frac = (d.New - d.Old) / d.Old
		d.Regressed = th.HeadlineFrac > 0 && d.Frac > th.HeadlineFrac
		out = append(out, d)
	}
	for _, nb := range new.Benchmarks {
		ob, ok := old.Lookup(nb.Name)
		if !ok {
			continue
		}
		if ob.NsPerOp > 0 {
			d := Delta{Name: nb.Name, Metric: "ns/op", Old: ob.NsPerOp, New: nb.NsPerOp}
			d.Frac = (d.New - d.Old) / d.Old
			d.Regressed = th.NsFrac > 0 && ob.NsPerOp >= th.MinNs && d.Frac > th.NsFrac
			out = append(out, d)
		}
		if ob.AllocsPerOp > 0 {
			d := Delta{Name: nb.Name, Metric: "allocs/op",
				Old: float64(ob.AllocsPerOp), New: float64(nb.AllocsPerOp)}
			d.Frac = (d.New - d.Old) / d.Old
			frac, floor := th.AllocFrac, th.MinAllocs
			if th.SimAllocFrac > 0 && strings.HasPrefix(nb.Name, "Sim") {
				frac, floor = th.SimAllocFrac, 0
			}
			d.Regressed = frac > 0 && ob.AllocsPerOp >= floor && d.Frac > frac
			out = append(out, d)
		}
	}
	return out, nil
}

// Regressions filters a comparison down to the deltas past threshold.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// RenderDeltas writes the comparison as an aligned table.
func RenderDeltas(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		fmt.Fprintln(w, d.String())
	}
}
