package benchtraj

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/pingpong"
)

// sink keeps tinySuite's allocation observable by -benchmem accounting.
var sink []byte

// tinySuite is a fast stand-in for the curated suite so Run's harness
// can be tested without simulating figures.
func tinySuite() []Entry {
	return []Entry{
		{"Alpha", func(_ context.Context, b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = make([]byte, 128)
			}
		}},
		{HeadlineEntry, func(_ context.Context, b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				time.Sleep(time.Microsecond)
			}
		}},
	}
}

func TestRunRecordsSuite(t *testing.T) {
	rec, err := Run(context.Background(), RunOptions{
		PR: 6, Benchtime: "10x", Suite: tinySuite(),
		Now: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", rec.Schema, SchemaVersion)
	}
	if rec.PR != 6 {
		t.Fatalf("pr %d, want 6", rec.PR)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rec.Benchmarks))
	}
	alpha, ok := rec.Lookup("Alpha")
	if !ok {
		t.Fatal("Alpha not recorded")
	}
	if alpha.Iterations <= 0 || alpha.NsPerOp <= 0 {
		t.Fatalf("bad Alpha measurement: %+v", alpha)
	}
	if alpha.AllocsPerOp < 1 {
		t.Fatalf("Alpha allocs/op = %d, want >= 1 (ReportAllocs must flow through)", alpha.AllocsPerOp)
	}
	// The headline must be captured from the designated suite entry.
	if rec.Headline.ColdAllFiguresNs <= 0 {
		t.Fatalf("headline not recorded: %+v", rec.Headline)
	}
}

func TestRunFilter(t *testing.T) {
	rec, err := Run(context.Background(), RunOptions{Benchtime: "5x", Suite: tinySuite(), Filter: "^Alpha$"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "Alpha" {
		t.Fatalf("filter kept %v", rec.Benchmarks)
	}
	if rec.Headline.ColdAllFiguresNs != 0 {
		t.Fatal("filtered-out headline entry still set the headline")
	}
	if _, err := Run(context.Background(), RunOptions{Suite: tinySuite(), Filter: "NoSuchEntry"}); err == nil {
		t.Fatal("empty selection should fail, not record an empty trajectory point")
	}
}

// TestRunHonorsCancellation pins the ctx plumbing: a cancelled recording
// stops at the entry boundary instead of measuring the rest of the suite.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, RunOptions{Benchtime: "1x", Suite: tinySuite()}); err == nil {
		t.Fatal("cancelled recording should fail, not silently measure the suite")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := &Record{
		Schema: SchemaVersion, PR: 6, GoVersion: "go-test",
		Headline:   Headline{ColdAllFiguresNs: 123456},
		Benchmarks: []Benchmark{{Name: "Alpha", Iterations: 3, NsPerOp: 10, BytesPerOp: 1, AllocsPerOp: 2}},
	}
	path := filepath.Join(dir, "BENCH_6.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PR != 6 || got.Headline.ColdAllFiguresNs != 123456 || len(got.Benchmarks) != 1 {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestNewestPicksHighestPR(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "notes.json"} {
		rec := &Record{Schema: SchemaVersion}
		if err := rec.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Newest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("Newest = %q, want BENCH_10.json (numeric, not lexicographic)", got)
	}

	empty := t.TempDir()
	if got, err := Newest(empty); err != nil || got != "" {
		t.Fatalf("Newest(empty) = %q, %v; want \"\", nil", got, err)
	}
}

func TestTrajectorySorted(t *testing.T) {
	dir := t.TempDir()
	for _, pr := range []int{10, 2, 9} {
		rec := &Record{Schema: SchemaVersion, PR: pr}
		if err := rec.WriteFile(filepath.Join(dir, "BENCH_"+itoa(pr)+".json")); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Trajectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].PR != 2 || recs[1].PR != 9 || recs[2].PR != 10 {
		t.Fatalf("trajectory order wrong: %v", prs(recs))
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func prs(recs []*Record) []int {
	out := make([]int, len(recs))
	for i, r := range recs {
		out[i] = r.PR
	}
	return out
}

// baselineRecord builds a reference record for comparison tests.
func baselineRecord() *Record {
	return &Record{
		Schema:   SchemaVersion,
		PR:       5,
		Headline: Headline{ColdAllFiguresNs: 10e9},
		Benchmarks: []Benchmark{
			{Name: "Hot", NsPerOp: 1e6, AllocsPerOp: 1000},
			{Name: "Micro", NsPerOp: 100, AllocsPerOp: 8},
		},
	}
}

// TestGateFailsOnRegression demonstrates the CI contract: a benchmark
// (and the headline) regressing past threshold is detected and reported
// as a regression — the condition `petasim bench -gate` turns into a
// nonzero exit.
func TestGateFailsOnRegression(t *testing.T) {
	old := baselineRecord()
	bad := &Record{
		Schema:   SchemaVersion,
		PR:       6,
		Headline: Headline{ColdAllFiguresNs: 20e9}, // 2× slower
		Benchmarks: []Benchmark{
			{Name: "Hot", NsPerOp: 2e6, AllocsPerOp: 1000}, // 2× slower
			{Name: "Micro", NsPerOp: 100, AllocsPerOp: 8},
		},
	}
	deltas, err := Compare(old, bad, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (headline + Hot ns/op), got %v", regs)
	}
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name+" "+d.Metric] = true
	}
	if !names["(headline) cold_all_figures_ns"] || !names["Hot ns/op"] {
		t.Fatalf("wrong regression set: %v", regs)
	}
}

func TestGatePassesWithinNoise(t *testing.T) {
	old := baselineRecord()
	ok := &Record{
		Schema:   SchemaVersion,
		PR:       6,
		Headline: Headline{ColdAllFiguresNs: 11e9}, // +10%, within 30%
		Benchmarks: []Benchmark{
			{Name: "Hot", NsPerOp: 1.2e6, AllocsPerOp: 1050},  // +20% ns, +5% allocs
			{Name: "Micro", NsPerOp: 1000, AllocsPerOp: 8},    // 10× but under MinNs floor
			{Name: "NewEntry", NsPerOp: 5e6, AllocsPerOp: 10}, // no baseline: skipped
		},
	}
	deltas, err := Compare(old, ok, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("noise-level changes flagged as regressions: %v", regs)
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	old := baselineRecord()
	bad := &Record{
		Schema:   SchemaVersion,
		Headline: Headline{ColdAllFiguresNs: 10e9},
		Benchmarks: []Benchmark{
			{Name: "Hot", NsPerOp: 1e6, AllocsPerOp: 2000}, // 2× allocs
		},
	}
	deltas, err := Compare(old, bad, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

// TestGateSimAllocsHaveNoFloor pins the simmpi-substrate alloc gate: a
// Sim*-prefixed entry regressing >20% in allocs/op fails even below the
// general MinAllocs=64 exemption, while an equally small non-Sim entry
// stays exempt. The pooled core's 3-alloc world spawn must not creep
// back under cover of the noise floor.
func TestGateSimAllocsHaveNoFloor(t *testing.T) {
	old := &Record{
		Schema:   SchemaVersion,
		Headline: Headline{ColdAllFiguresNs: 10e9},
		Benchmarks: []Benchmark{
			{Name: "SimWorldSpawn1024", NsPerOp: 1e5, AllocsPerOp: 3},
			{Name: "Micro", NsPerOp: 100, AllocsPerOp: 3},
		},
	}
	bad := &Record{
		Schema:   SchemaVersion,
		Headline: Headline{ColdAllFiguresNs: 10e9},
		Benchmarks: []Benchmark{
			{Name: "SimWorldSpawn1024", NsPerOp: 1e5, AllocsPerOp: 4}, // +33%
			{Name: "Micro", NsPerOp: 100, AllocsPerOp: 4},             // +33%, exempt
		},
	}
	deltas, err := Compare(old, bad, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "SimWorldSpawn1024" || regs[0].Metric != "allocs/op" {
		t.Fatalf("want exactly the Sim* allocs/op regression, got %v", regs)
	}
}

func TestCompareRejectsSchemaMismatch(t *testing.T) {
	old := baselineRecord()
	old.Schema = SchemaVersion + 1
	if _, err := Compare(old, baselineRecord(), DefaultThresholds()); err == nil {
		t.Fatal("cross-schema comparison must fail")
	}
}

// TestPingPongAllocsBounded pins the pooled-messaging win on the
// Table 1 body: one full ping-pong sweep across every machine must stay
// under 100 allocations (the goroutine-per-rank core needed ~2.5k).
func TestPingPongAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per sync event")
	}
	body := func() {
		for _, m := range machine.All() {
			if _, err := pingpong.Measure(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	body() // warm the scheduler's host pool and the worlds' arenas
	if allocs := testing.AllocsPerRun(5, body); allocs >= 100 {
		t.Errorf("Table 1 ping-pong sweep allocates %.0f/op, want < 100", allocs)
	}
}
