package benchtraj

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/apps/beambeam3d"
	"repro/internal/apps/cactus"
	"repro/internal/apps/elbm3d"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hyperclaw"
	"repro/internal/apps/paratec"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/pingpong"
	"repro/internal/runner"
	"repro/internal/simmpi"
	"repro/internal/stream"
	"repro/internal/whatif"
)

// Entry is one named benchmark of the curated suite. The same bodies
// back the root bench_test.go wrappers (go test -bench sees
// Benchmark<Name>) and petasim bench (which measures them with
// testing.Benchmark), so the trajectory and the ad-hoc numbers can
// never drift apart.
type Entry struct {
	Name  string
	Bench func(ctx context.Context, b *testing.B)
}

// Suite returns the curated benchmark suite in recording order: the
// paper-artifact pipeline first (one benchmark per table/figure), the
// scheduling and what-if layers, then the simmpi-core microbenchmarks.
//
// Every entry calls b.ReportAllocs, and every entry builds the state it
// mutates (pools, caches, worlds) itself — per benchmark, or per
// iteration where an iteration would otherwise warm the next — so
// -benchmem numbers are attributable to the measured body.
func Suite() []Entry {
	return []Entry{
		{"Table1Stream", benchTable1Stream},
		{"Table1PingPong", benchTable1PingPong},
		{"Table2", benchTable2},
		{"Fig1CommTopo", benchFig1CommTopo},
		{"Fig2GTC", benchFig2GTC},
		{"Fig3ELBM3D", benchFig3ELBM3D},
		{"Fig4Cactus", benchFig4Cactus},
		{"Fig5BeamBeam3D", benchFig5BeamBeam3D},
		{"Fig6PARATEC", benchFig6PARATEC},
		{"Fig7HyperCLaw", benchFig7HyperCLaw},
		{"Fig8Summary", benchFig8Summary},
		{"AllFiguresCold", benchAllFiguresCold},
		{"AllFiguresCached", benchAllFiguresCached},
		{"WhatIfPlan", benchWhatIfPlan},
		{"WhatIfWarm", benchWhatIfWarm},
		{"GTCOptStudy", benchGTCOptStudy},
		{"AMROptStudy", benchAMROptStudy},
		{"SimP2PThroughput", benchSimP2PThroughput},
		{"SimAllreduce256", benchSimAllreduce256},
		{"SimCollectives64", benchSimCollectives64},
		{"SimWorldSpawn1024", benchSimWorldSpawn1024},
	}
}

// Lookup returns the named suite entry.
func Lookup(name string) (Entry, bool) {
	for _, e := range Suite() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// HeadlineEntry names the suite entry whose ns/op is the record's
// headline cold-AllFigures wall time.
const HeadlineEntry = "AllFiguresCold"

func benchTable1Stream(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			if r := stream.Measure(m, 1<<18); r.GBsPerProc <= 0 {
				b.Fatal("bad stream measurement")
			}
		}
	}
}

func benchTable1PingPong(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			if _, err := pingpong.Measure(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchTable2(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows) != 6 {
			b.Fatal("wrong table 2")
		}
	}
}

func benchFig1CommTopo(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1CommTopos(ctx, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig2GTC(ctx context.Context, b *testing.B) {
	cfg := gtc.DefaultConfig(machine.Jaguar, 64)
	cfg.ActualParticlesPerRank = 500
	cfg.Steps = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gtc.Run(ctx, simmpi.Config{Machine: machine.Jaguar, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig3ELBM3D(ctx context.Context, b *testing.B) {
	cfg := elbm3d.DefaultConfig(64)
	cfg.ActualN = 16
	cfg.Steps = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elbm3d.Run(ctx, simmpi.Config{Machine: machine.Bassi, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig4Cactus(ctx context.Context, b *testing.B) {
	cfg := cactus.DefaultConfig(64)
	cfg.ActualPerProc = 6
	cfg.Steps = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cactus.Run(ctx, simmpi.Config{Machine: machine.BGW, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig5BeamBeam3D(ctx context.Context, b *testing.B) {
	cfg := beambeam3d.DefaultConfig(64)
	cfg.ParticlesPerRank = 200
	cfg.Steps = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := beambeam3d.Run(ctx, simmpi.Config{Machine: machine.Phoenix, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig6PARATEC(ctx context.Context, b *testing.B) {
	cfg := paratec.DefaultConfig(false)
	cfg.Iters = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paratec.Run(ctx, simmpi.Config{Machine: machine.Bassi, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig7HyperCLaw(ctx context.Context, b *testing.B) {
	cfg := hyperclaw.DefaultConfig(16)
	cfg.Steps = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hyperclaw.Run(ctx, simmpi.Config{Machine: machine.Jacquard, Procs: 16}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig8Summary(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Quick: true, MaxProcs: 32}
		if _, err := experiments.Fig8Summary(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllFiguresCold is the headline body: Figures 2–7 regenerated
// through a fresh, uncached pool each iteration, so every iteration
// pays the full cold simulation cost.
func benchAllFiguresCold(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hyperclaw.ResetTrajectoryCache()
		opts := experiments.Options{Quick: true, MaxProcs: 64,
			Runner: &runner.Pool{Workers: runtime.GOMAXPROCS(0)}}
		if figs, err := experiments.AllFigures(ctx, opts); err != nil || len(figs) != 6 {
			b.Fatalf("figs=%d err=%v", len(figs), err)
		}
	}
}

// benchAllFiguresCached measures a fully warm cache: every point served
// from disk (via the memory tier), bounding per-point cache overhead.
func benchAllFiguresCached(ctx context.Context, b *testing.B) {
	cache, err := runner.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Quick: true, MaxProcs: 64,
		Runner: &runner.Pool{Workers: runtime.GOMAXPROCS(0), Cache: cache}}
	if _, err := experiments.AllFigures(ctx, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AllFigures(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// whatIfBenchPlan is the what-if fixture: one app × one machine × a
// 3-knob perturbation grid (7 points with the shared baseline).
func whatIfBenchPlan(b *testing.B) *whatif.Plan {
	b.Helper()
	plan, err := whatif.NewPlan("gtc", []machine.Spec{machine.BGL}, []int{64},
		[]whatif.Perturbation{{Knob: whatif.Stream, Pct: 20}, {Knob: whatif.Latency, Pct: 50}, {Knob: whatif.Peak, Pct: 20}}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func benchWhatIfPlan(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		whatIfBenchPlan(b)
	}
}

func benchWhatIfWarm(ctx context.Context, b *testing.B) {
	plan := whatIfBenchPlan(b)
	pool := &runner.Pool{Workers: runtime.GOMAXPROCS(0), Mem: runner.NewMemCache(256)}
	if _, err := plan.Execute(ctx, pool); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(ctx, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGTCOptStudy(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Quick: true}
		if _, err := experiments.GTCOptStudy(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAMROptStudy(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Quick: true}
		if _, err := experiments.AMROptStudy(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimP2PThroughput measures the host cost of the virtual-time
// point-to-point path: 2 ranks, 1000 tagged messages.
func benchSimP2PThroughput(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.RunContext(ctx, simmpi.Config{Machine: machine.Jaguar, Procs: 2}, func(r *simmpi.Rank) {
			const msgs = 1000
			payload := make([]float64, 16)
			if r.ID() == 0 {
				for m := 0; m < msgs; m++ {
					r.Send(1, m, payload)
				}
			} else {
				for m := 0; m < msgs; m++ {
					r.Recv(0, m)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimAllreduce256 measures the collective rendezvous machinery at
// width: 256 ranks, 4 rounds of a 64-element allreduce.
func benchSimAllreduce256(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.RunContext(ctx, simmpi.Config{Machine: machine.BGW, Procs: 256}, func(r *simmpi.Rank) {
			buf := make([]float64, 64)
			for it := 0; it < 4; it++ {
				r.Allreduce(r.World(), buf, simmpi.OpSum)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimCollectives64 exercises the full collective family on one
// 64-rank world — the mix the AMR ghost-fill and regrid paths lean on.
func benchSimCollectives64(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.RunContext(ctx, simmpi.Config{Machine: machine.Bassi, Procs: 64}, func(r *simmpi.Rank) {
			w := r.World()
			// 64 elements so ReduceScatter divides evenly across 64 ranks.
			buf := make([]float64, 64)
			r.Barrier(w)
			r.Bcast(w, 0, buf)
			r.Allreduce(w, buf, simmpi.OpSum)
			r.Allgather(w, buf[:4])
			r.Reduce(w, 0, buf, simmpi.OpMax)
			parts := make([][]float64, w.Size())
			for j := range parts {
				parts[j] = buf[:2]
			}
			r.Alltoall(w, parts)
			r.ReduceScatter(w, buf, simmpi.OpSum)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimWorldSpawn1024 measures world startup/teardown: per-run
// allocation of mailboxes, ranks, and the world communicator.
func benchSimWorldSpawn1024(ctx context.Context, b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.RunContext(ctx, simmpi.Config{Machine: machine.BGW, Procs: 1024}, func(r *simmpi.Rank) {
			r.Elapse(1e-6)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
