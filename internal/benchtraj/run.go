package benchtraj

import (
	"context"
	"flag"
	"fmt"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"
)

// RunOptions configure one suite recording.
type RunOptions struct {
	// PR labels the record's trajectory point (BENCH_<pr>.json).
	PR int
	// Benchtime overrides the per-entry measuring budget, in the
	// testing flag's syntax: a duration ("100ms") or an iteration
	// count ("1x"). Empty keeps the testing default (1s), which is
	// what committed trajectory points should be recorded with.
	Benchtime string
	// Filter, if non-empty, restricts the suite to entries whose name
	// matches this regular expression.
	Filter string
	// Suite overrides the measured suite (tests use tiny stand-ins);
	// nil measures the real curated suite.
	Suite []Entry
	// Logf, if non-nil, receives one progress line per entry.
	Logf func(format string, args ...any)
	// Now stamps the record; nil uses time.Now.
	Now func() time.Time
}

// benchtimeInit initialises the testing package exactly once: outside a
// `go test` binary its flags (and the internals b.Fatal's logger reads)
// only exist after testing.Init registers them.
var benchtimeInit sync.Once

func initTesting() {
	benchtimeInit.Do(func() {
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
	})
}

func setBenchtime(v string) error {
	f := flag.Lookup("test.benchtime")
	if f == nil {
		return fmt.Errorf("benchtraj: testing flags unavailable")
	}
	return f.Value.Set(v)
}

// Run measures the suite in-process and assembles the trajectory
// record. A failed entry (b.Fatal inside a body) fails the run. The ctx
// reaches every bench body (cancelling aborts the in-flight simulations)
// and is re-checked between entries, so an interrupted recording stops at
// the next entry boundary instead of measuring the rest of the suite.
func Run(ctx context.Context, opts RunOptions) (*Record, error) {
	suite := opts.Suite
	if suite == nil {
		suite = Suite()
	}
	if opts.Filter != "" {
		pat, err := regexp.Compile(opts.Filter)
		if err != nil {
			return nil, fmt.Errorf("benchtraj: bad filter: %w", err)
		}
		var kept []Entry
		for _, e := range suite {
			if pat.MatchString(e.Name) {
				kept = append(kept, e)
			}
		}
		suite = kept
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("benchtraj: no suite entries selected")
	}
	initTesting()
	if opts.Benchtime != "" {
		if err := setBenchtime(opts.Benchtime); err != nil {
			return nil, err
		}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rec := &Record{
		Schema:     SchemaVersion,
		PR:         opts.PR,
		CreatedAt:  now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  opts.Benchtime,
	}
	for _, e := range suite {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("benchtraj: recording cancelled before %s: %w", e.Name, err)
		}
		var failed string
		res := testing.Benchmark(func(b *testing.B) {
			defer func() {
				if b.Failed() {
					failed = e.Name
				}
			}()
			e.Bench(ctx, b)
		})
		if failed != "" {
			// A cancelled ctx aborts the in-flight simulation and fails the
			// entry; report that as cancellation, not a benchmark bug.
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("benchtraj: recording cancelled during %s: %w", failed, err)
			}
			return nil, fmt.Errorf("benchtraj: benchmark %s failed", failed)
		}
		bm := Benchmark{
			Name:        e.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rec.Benchmarks = append(rec.Benchmarks, bm)
		logf("benchtraj: %-20s %12.0f ns/op %12d B/op %8d allocs/op (%d iters)",
			bm.Name, bm.NsPerOp, bm.BytesPerOp, bm.AllocsPerOp, bm.Iterations)
		if e.Name == HeadlineEntry {
			rec.Headline.ColdAllFiguresNs = bm.NsPerOp
		}
	}
	return rec, nil
}
