//go:build !race

package benchtraj

// raceEnabled is false in uninstrumented builds; see race_test.go.
const raceEnabled = false
