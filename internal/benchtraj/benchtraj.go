// Package benchtraj is the benchmark-trajectory subsystem: it runs the
// curated performance suite in-process, records the results as a
// schema-versioned BENCH_<pr>.json, and diffs records against each other
// with noise-aware thresholds so CI can fail on a regression.
//
// The repository's growth is paced by "make the core faster, and prove
// it" (ROADMAP), and a proof needs a substrate: one JSON trajectory
// point per PR, produced by `petasim bench -json BENCH_<pr>.json` and
// gated by `petasim bench -gate -against BENCH_<prev>.json`. The suite
// mirrors the root bench_test.go benchmarks (which delegate here, so
// `go test -bench` and `petasim bench` measure the same bodies) plus
// simmpi-core microbenchmarks, and the headline metric is the cold
// AllFigures wall time — the figure regeneration cross-product with
// nothing cached, the turnaround number Xu et al. identify as what makes
// simulation-based prediction usable at all.
package benchtraj

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// SchemaVersion identifies the on-disk record layout. Bump it when a
// field changes meaning; Compare refuses to diff across versions.
const SchemaVersion = 1

// Benchmark is one suite entry's measurement.
type Benchmark struct {
	// Name is the suite entry name (bench_test.go's Benchmark<Name>).
	Name string `json:"name"`
	// Iterations is the b.N the harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is the wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the allocated bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Headline is the record's top-line metric.
type Headline struct {
	// ColdAllFiguresNs is the wall time of one cold (uncached,
	// fresh-pool) Figures 2–7 regeneration at reduced concurrency.
	ColdAllFiguresNs float64 `json:"cold_all_figures_ns"`
}

// Record is one trajectory point: the environment it was measured in
// and every suite measurement.
type Record struct {
	Schema     int    `json:"schema"`
	PR         int    `json:"pr,omitempty"`
	CreatedAt  string `json:"created_at,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchtime records the per-entry measuring budget the suite ran
	// with ("" = the testing default of 1s), so two records measured
	// under different budgets are comparable by eye.
	Benchtime  string      `json:"benchtime,omitempty"`
	Headline   Headline    `json:"headline"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Lookup returns the named benchmark, if present.
func (r *Record) Lookup(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// WriteFile writes the record as indented JSON (trailing newline, so the
// committed trajectory files are diff- and editor-friendly).
func (r *Record) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchtraj: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a record and validates its schema version.
func ReadFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchtraj: %w", err)
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchtraj: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchtraj: %s has schema %d, this build reads schema %d",
			path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// benchFilePat matches trajectory files: BENCH_<pr>.json.
var benchFilePat = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Newest returns the path of the highest-numbered BENCH_<pr>.json in
// dir, or "" if none exists — the default -against target, so every PR
// gates on the newest committed trajectory point without naming it.
func Newest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("benchtraj: %w", err)
	}
	best, bestPR := "", -1
	for _, e := range entries {
		m := benchFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil || pr <= bestPR {
			continue
		}
		best, bestPR = filepath.Join(dir, e.Name()), pr
	}
	return best, nil
}

// Trajectory loads every BENCH_*.json in dir, sorted by PR number — the
// full recorded history, for rendering or tooling.
func Trajectory(dir string) ([]*Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("benchtraj: %w", err)
	}
	var out []*Record
	for _, e := range entries {
		if benchFilePat.MatchString(e.Name()) {
			r, err := ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PR < out[j].PR })
	return out, nil
}
