// Package repro's root benchmarks regenerate each table and figure of the
// paper at reduced concurrency — one benchmark per artifact, so
//
//	go test -bench=. -benchmem
//
// exercises the full reproduction pipeline. Full-scale runs go through
// cmd/petasim.
package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/apps/beambeam3d"
	"repro/internal/apps/cactus"
	"repro/internal/apps/elbm3d"
	"repro/internal/apps/gtc"
	"repro/internal/apps/hyperclaw"
	"repro/internal/apps/paratec"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/pingpong"
	"repro/internal/runner"
	"repro/internal/simmpi"
	"repro/internal/stream"
	"repro/internal/whatif"
)

// BenchmarkTable1Stream regenerates the EP-STREAM triad column.
func BenchmarkTable1Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			if r := stream.Measure(m, 1<<18); r.GBsPerProc <= 0 {
				b.Fatal("bad stream measurement")
			}
		}
	}
}

// BenchmarkTable1PingPong regenerates the MPI latency/bandwidth columns.
func BenchmarkTable1PingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			if _, err := pingpong.Measure(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2 regenerates the application overview.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows) != 6 {
			b.Fatal("wrong table 2")
		}
	}
}

// BenchmarkFig1CommTopo captures the six communication topologies.
func BenchmarkFig1CommTopo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1CommTopos(context.Background(), 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2GTC runs one Figure 2 weak-scaling point.
func BenchmarkFig2GTC(b *testing.B) {
	cfg := gtc.DefaultConfig(machine.Jaguar, 64)
	cfg.ActualParticlesPerRank = 500
	cfg.Steps = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gtc.Run(context.Background(), simmpi.Config{Machine: machine.Jaguar, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ELBM3D runs one Figure 3 strong-scaling point.
func BenchmarkFig3ELBM3D(b *testing.B) {
	cfg := elbm3d.DefaultConfig(64)
	cfg.ActualN = 16
	cfg.Steps = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elbm3d.Run(context.Background(), simmpi.Config{Machine: machine.Bassi, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Cactus runs one Figure 4 weak-scaling point.
func BenchmarkFig4Cactus(b *testing.B) {
	cfg := cactus.DefaultConfig(64)
	cfg.ActualPerProc = 6
	cfg.Steps = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cactus.Run(context.Background(), simmpi.Config{Machine: machine.BGW, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5BeamBeam3D runs one Figure 5 strong-scaling point.
func BenchmarkFig5BeamBeam3D(b *testing.B) {
	cfg := beambeam3d.DefaultConfig(64)
	cfg.ParticlesPerRank = 200
	cfg.Steps = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := beambeam3d.Run(context.Background(), simmpi.Config{Machine: machine.Phoenix, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PARATEC runs one Figure 6 strong-scaling point.
func BenchmarkFig6PARATEC(b *testing.B) {
	cfg := paratec.DefaultConfig(false)
	cfg.Iters = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paratec.Run(context.Background(), simmpi.Config{Machine: machine.Bassi, Procs: 64}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7HyperCLaw runs one Figure 7 weak-scaling point.
func BenchmarkFig7HyperCLaw(b *testing.B) {
	cfg := hyperclaw.DefaultConfig(16)
	cfg.Steps = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hyperclaw.Run(context.Background(), simmpi.Config{Machine: machine.Jacquard, Procs: 16}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Summary regenerates the cross-application summary at
// reduced concurrency.
func BenchmarkFig8Summary(b *testing.B) {
	opts := experiments.Options{Quick: true, MaxProcs: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Summary(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllFigures regenerates Figures 2–7 at reduced concurrency
// through a pool of the given width — the scheduling seam the full
// cmd/petasim cross-product runs through.
func benchAllFigures(b *testing.B, workers int) {
	opts := experiments.Options{Quick: true, MaxProcs: 64,
		Runner: &runner.Pool{Workers: workers}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if figs, err := experiments.AllFigures(context.Background(), opts); err != nil || len(figs) != 6 {
			b.Fatalf("figs=%d err=%v", len(figs), err)
		}
	}
}

// BenchmarkAllFiguresSerial is the one-worker baseline for the figure
// cross-product.
func BenchmarkAllFiguresSerial(b *testing.B) { benchAllFigures(b, 1) }

// BenchmarkAllFiguresParallel fans the same cross-product across the
// host's processors.
func BenchmarkAllFiguresParallel(b *testing.B) { benchAllFigures(b, runtime.GOMAXPROCS(0)) }

// BenchmarkAllFiguresCached measures a fully warm cache: every point is
// served from disk, so this bounds the per-point cache overhead.
func BenchmarkAllFiguresCached(b *testing.B) {
	cache, err := runner.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Quick: true, MaxProcs: 64,
		Runner: &runner.Pool{Workers: runtime.GOMAXPROCS(0), Cache: cache}}
	if _, err := experiments.AllFigures(context.Background(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AllFigures(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// whatifBenchPlan is the what-if hot path's fixture: one app × one
// machine × a 3-knob perturbation grid (7 points with the shared
// baseline).
func whatifBenchPlan(b *testing.B) *whatif.Plan {
	b.Helper()
	plan, err := whatif.NewPlan("gtc", []machine.Spec{machine.BGL}, []int{64},
		[]whatif.Perturbation{{Knob: whatif.Stream, Pct: 20}, {Knob: whatif.Latency, Pct: 50}, {Knob: whatif.Peak, Pct: 20}}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkWhatIfPlan measures plan expansion alone: selector
// validation, perturbed-spec construction, and grid layout — the work
// every whatif request pays before any simulation or cache lookup.
func BenchmarkWhatIfPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		whatifBenchPlan(b)
	}
}

// BenchmarkWhatIfWarm measures a fully warm what-if scan: every grid
// point served from the memory tier, so this bounds the per-study
// overhead of key hashing, cache lookups, and the tornado/frontier
// reduction.
func BenchmarkWhatIfWarm(b *testing.B) {
	plan := whatifBenchPlan(b)
	pool := &runner.Pool{Workers: runtime.GOMAXPROCS(0), Mem: runner.NewMemCache(256)}
	if _, err := plan.Execute(context.Background(), pool); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(context.Background(), pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGTCOptStudy regenerates the §3.1 optimisation ladder.
func BenchmarkGTCOptStudy(b *testing.B) {
	opts := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GTCOptStudy(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMROptStudy regenerates the §8.1 optimisation comparison.
func BenchmarkAMROptStudy(b *testing.B) {
	opts := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AMROptStudy(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}
