// Package repro's root benchmarks regenerate each table and figure of the
// paper at reduced concurrency — one benchmark per artifact, so
//
//	go test -bench=. -benchmem
//
// exercises the full reproduction pipeline. Full-scale runs go through
// cmd/petasim.
//
// Every body lives in internal/benchtraj, the benchmark-trajectory
// subsystem: `petasim bench` measures the same suite in-process and
// records it as a BENCH_<pr>.json trajectory point, so the numbers here
// and the gated trajectory can never drift apart. Each suite body calls
// b.ReportAllocs and builds the pools/caches it mutates itself (fresh
// per iteration where sharing would let one iteration warm the next),
// so -benchmem numbers are attributable to the measured body.
package repro

import (
	"testing"

	"repro/internal/apps/hyperclaw"
	"repro/internal/benchtraj"
	"repro/internal/experiments"
	"repro/internal/runner"
)

// suite returns the shared benchmark body for one trajectory entry,
// bound to the test's context (go test cancels it on interrupt/timeout,
// which aborts the in-flight simulations cleanly).
func suite(tb testing.TB, name string) func(b *testing.B) {
	e, ok := benchtraj.Lookup(name)
	if !ok {
		tb.Fatalf("benchtraj suite has no entry %q", name)
	}
	return func(b *testing.B) { e.Bench(b.Context(), b) }
}

// BenchmarkTable1Stream regenerates the EP-STREAM triad column.
func BenchmarkTable1Stream(b *testing.B) { suite(b, "Table1Stream")(b) }

// BenchmarkTable1PingPong regenerates the MPI latency/bandwidth columns.
func BenchmarkTable1PingPong(b *testing.B) { suite(b, "Table1PingPong")(b) }

// BenchmarkTable2 regenerates the application overview.
func BenchmarkTable2(b *testing.B) { suite(b, "Table2")(b) }

// BenchmarkFig1CommTopo captures the six communication topologies.
func BenchmarkFig1CommTopo(b *testing.B) { suite(b, "Fig1CommTopo")(b) }

// BenchmarkFig2GTC runs one Figure 2 weak-scaling point.
func BenchmarkFig2GTC(b *testing.B) { suite(b, "Fig2GTC")(b) }

// BenchmarkFig3ELBM3D runs one Figure 3 strong-scaling point.
func BenchmarkFig3ELBM3D(b *testing.B) { suite(b, "Fig3ELBM3D")(b) }

// BenchmarkFig4Cactus runs one Figure 4 weak-scaling point.
func BenchmarkFig4Cactus(b *testing.B) { suite(b, "Fig4Cactus")(b) }

// BenchmarkFig5BeamBeam3D runs one Figure 5 strong-scaling point.
func BenchmarkFig5BeamBeam3D(b *testing.B) { suite(b, "Fig5BeamBeam3D")(b) }

// BenchmarkFig6PARATEC runs one Figure 6 strong-scaling point.
func BenchmarkFig6PARATEC(b *testing.B) { suite(b, "Fig6PARATEC")(b) }

// BenchmarkFig7HyperCLaw runs one Figure 7 weak-scaling point.
func BenchmarkFig7HyperCLaw(b *testing.B) { suite(b, "Fig7HyperCLaw")(b) }

// BenchmarkFig8Summary regenerates the cross-application summary at
// reduced concurrency.
func BenchmarkFig8Summary(b *testing.B) { suite(b, "Fig8Summary")(b) }

// BenchmarkAllFiguresSerial is the one-worker baseline for the figure
// cross-product: the scheduling seam the full cmd/petasim run goes
// through, with a fresh single-worker pool per iteration so no state
// (singleflight group, simulation-slot semaphore) carries across
// iterations.
func BenchmarkAllFiguresSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hyperclaw.ResetTrajectoryCache()
		opts := experiments.Options{Quick: true, MaxProcs: 64,
			Runner: &runner.Pool{Workers: 1}}
		if figs, err := experiments.AllFigures(b.Context(), opts); err != nil || len(figs) != 6 {
			b.Fatalf("figs=%d err=%v", len(figs), err)
		}
	}
}

// BenchmarkAllFiguresParallel fans the same cross-product across the
// host's processors — the trajectory's headline cold-AllFigures body.
func BenchmarkAllFiguresParallel(b *testing.B) { suite(b, "AllFiguresCold")(b) }

// BenchmarkAllFiguresCached measures a fully warm cache: every point is
// served from disk, so this bounds the per-point cache overhead.
func BenchmarkAllFiguresCached(b *testing.B) { suite(b, "AllFiguresCached")(b) }

// BenchmarkWhatIfPlan measures plan expansion alone: selector
// validation, perturbed-spec construction, and grid layout — the work
// every whatif request pays before any simulation or cache lookup.
func BenchmarkWhatIfPlan(b *testing.B) { suite(b, "WhatIfPlan")(b) }

// BenchmarkWhatIfWarm measures a fully warm what-if scan: every grid
// point served from the memory tier, so this bounds the per-study
// overhead of key hashing, cache lookups, and the tornado/frontier
// reduction.
func BenchmarkWhatIfWarm(b *testing.B) { suite(b, "WhatIfWarm")(b) }

// BenchmarkGTCOptStudy regenerates the §3.1 optimisation ladder.
func BenchmarkGTCOptStudy(b *testing.B) { suite(b, "GTCOptStudy")(b) }

// BenchmarkAMROptStudy regenerates the §8.1 optimisation comparison.
func BenchmarkAMROptStudy(b *testing.B) { suite(b, "AMROptStudy")(b) }

// BenchmarkSimP2PThroughput measures the simmpi point-to-point path.
func BenchmarkSimP2PThroughput(b *testing.B) { suite(b, "SimP2PThroughput")(b) }

// BenchmarkSimAllreduce256 measures the collective rendezvous at width.
func BenchmarkSimAllreduce256(b *testing.B) { suite(b, "SimAllreduce256")(b) }

// BenchmarkSimCollectives64 exercises the full collective family on one
// 64-rank world.
func BenchmarkSimCollectives64(b *testing.B) { suite(b, "SimCollectives64")(b) }

// BenchmarkSimWorldSpawn1024 measures world startup/teardown cost.
func BenchmarkSimWorldSpawn1024(b *testing.B) { suite(b, "SimWorldSpawn1024")(b) }

// TestBenchSuiteNames pins the suite contract: every trajectory entry
// has a body, and the headline entry exists, so `go test -bench` covers
// exactly what `petasim bench` records.
func TestBenchSuiteNames(t *testing.T) {
	for _, e := range benchtraj.Suite() {
		if e.Bench == nil {
			t.Errorf("suite entry %q has no body", e.Name)
		}
	}
	if _, ok := benchtraj.Lookup(benchtraj.HeadlineEntry); !ok {
		t.Errorf("headline entry %q missing from suite", benchtraj.HeadlineEntry)
	}
}
